//! The serving engine: an event-driven reactor dispatching a bounded
//! submission queue into deadline-aware fused batches, plus the cost-scored
//! backend router for perf predictions.
//!
//! ```text
//! clients ──submit(SubmitOptions)──▶ SyncQueue (bounded; Full/Overloaded = backpressure)
//!              │ raise(EV_SUBMIT)        │ try_pop (dispatcher thread)
//!              ▼                         ▼
//!          Reactor ◀─EV_CONTROL── pause/resume/shutdown
//!          (sticky  ◀─EV_RECOVERY─ shard supervisor (worker respawned)
//!           event
//!           bits)   batcher: deadline triage → group by served model
//!              │         → adaptive fusion window (oldest deadline ÷
//!              ▼           observed service time)     │
//!        wait() blocks only      │                    ▼
//!        when queue empty        ▼              Platform cost router
//!        and nothing raised  fused forward_rows (cheapest / named
//!                            per window          accelerator model)
//!                                │                    │
//!                                └──▶ Ticket.fulfill ◀┘
//! ```
//!
//! The dispatcher never polls: it pops greedily, and when the queue is
//! empty it blocks in [`gcod_runtime::Reactor::wait`] until a submission,
//! control change, or worker-recovery event raises a sticky bit. The wakeup
//! protocol (and the drain-on-shutdown contract: every accepted ticket
//! resolves) is model-checked in `tests/model_reactor.rs`.

use crate::batch::{adaptive_max_batch, group_in_arrival_order, split_stacked};
use crate::error::{RejectReason, Result, ServeError};
use crate::model::ServedModel;
use crate::request::{Backend, Classification, PerfPrediction, ServeRequest, ServeResponse};
use crate::shard::{ShardStatsAtomics, ShardTransportStats, ShardedModel};
use crate::ticket::{ticket_pair, Completion, Ticket};
use gcod_baselines::suite;
use gcod_nn::Tensor;
use gcod_platform::{cheapest_platform, Platform};
use gcod_runtime::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use gcod_runtime::sync::{thread, Condvar, Mutex};
use gcod_runtime::{PushError, Reactor, SyncQueue, Wake};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reactor bit: a submission was pushed onto the queue.
const EV_SUBMIT: u64 = 1 << 0;
/// Reactor bit: a control flag (pause/resume) changed.
const EV_CONTROL: u64 = 1 << 1;
/// Reactor bit: a shard supervisor finished a recovery transition
/// (worker respawned or the model degraded to its local fallback).
const EV_RECOVERY: u64 = 1 << 2;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Capacity of the bounded submission queue; a full queue rejects
    /// submissions with [`RejectReason::QueueFull`] (backpressure).
    pub queue_capacity: usize,
    /// Most requests one fused batch may coalesce. Deadline-carrying
    /// traffic may fuse fewer (see [`ServerStats::est_request_ns`]); never
    /// more.
    pub max_batch: usize,
    /// Deadline applied to submissions that carry none (`None` = requests
    /// never expire).
    pub default_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 32,
            default_deadline: None,
        }
    }
}

/// A point-in-time snapshot of server counters (see `Handle::stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Submissions accepted into the queue.
    pub submitted: u64,
    /// Submissions rejected at the door (queue-full backpressure plus
    /// overload shedding).
    pub rejected: u64,
    /// Of the rejected, those shed by admission control: the deadline would
    /// have expired waiting for the backlog ([`RejectReason::Overloaded`]).
    pub shed: u64,
    /// Accepted requests whose deadline expired before execution.
    pub expired: u64,
    /// Requests completed successfully.
    pub completed_ok: u64,
    /// Requests completed with an error (deadline expiries included).
    pub completed_err: u64,
    /// Dispatcher batches executed (each may fuse several requests).
    pub batches: u64,
    /// Largest number of requests fused into one forward pass so far.
    pub largest_batch: usize,
    /// Worker-recovery events the reactor observed (a shard supervisor
    /// respawned a dead worker or degraded to the local fallback).
    pub worker_events: u64,
    /// Running estimate of per-request fused service time in nanoseconds
    /// (EWMA over successful fused passes; 0 until the first pass). This is
    /// the signal adaptive batching and overload shedding act on.
    pub est_request_ns: u64,
    /// Shard-transport counters, aggregated over every sharded model the
    /// server owns (all zeros when nothing is sharded).
    pub shard: ShardTransportStats,
}

/// One queued unit of work: the request, its deadline, and the write half of
/// the client's ticket.
struct Submission {
    request: ServeRequest,
    deadline: Option<Instant>,
    completion: Completion,
}

#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    completed_ok: AtomicU64,
    completed_err: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicUsize,
    worker_events: AtomicU64,
    est_request_ns: AtomicU64,
}

impl Stats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            expired: self.expired.load(Ordering::SeqCst),
            completed_ok: self.completed_ok.load(Ordering::SeqCst),
            completed_err: self.completed_err.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            largest_batch: self.largest_batch.load(Ordering::SeqCst),
            worker_events: self.worker_events.load(Ordering::SeqCst),
            est_request_ns: self.est_request_ns.load(Ordering::SeqCst),
            shard: ShardTransportStats::default(),
        }
    }
}

struct ControlState {
    paused: bool,
    /// Set by the dispatcher while it is parked in the pause wait — the
    /// acknowledgement `Handle::pause` blocks on.
    parked: bool,
}

/// State shared between client handles and the dispatcher thread.
struct Shared {
    queue: SyncQueue<Submission>,
    /// The wakeup hub: submissions, control changes and worker-recovery
    /// events raise sticky bits here; the dispatcher blocks in
    /// [`Reactor::wait`] instead of polling.
    reactor: Reactor,
    control: Mutex<ControlState>,
    control_changed: Condvar,
    stats: Stats,
    /// Live transport counters of every sharded model the server owns, so
    /// `Handle::stats` can fold them into the snapshot.
    shard_stats: Vec<Arc<ShardStatsAtomics>>,
    next_id: AtomicU64,
    queue_capacity: usize,
    default_deadline: Option<Duration>,
}

impl Shared {
    fn new(config: &ServerConfig, shard_stats: Vec<Arc<ShardStatsAtomics>>) -> Self {
        Self {
            queue: SyncQueue::bounded(config.queue_capacity),
            reactor: Reactor::new(),
            control: Mutex::new(ControlState {
                paused: false,
                parked: false,
            }),
            control_changed: Condvar::new(),
            stats: Stats::default(),
            shard_stats,
            next_id: AtomicU64::new(0),
            queue_capacity: config.queue_capacity.max(1),
            default_deadline: config.default_deadline,
        }
    }

    /// Counter snapshot with the shard-transport counters folded in.
    fn server_stats(&self) -> ServerStats {
        let mut stats = self.stats.snapshot();
        for shard in &self.shard_stats {
            stats.shard.merge(&shard.snapshot());
        }
        stats
    }

    /// Folds a reactor wakeup's event bits into the counters.
    fn record_wake(&self, wake: &Wake) {
        if wake.has(EV_RECOVERY) {
            self.stats.worker_events.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Parks the dispatcher while paused; returns when unpaused or when the
    /// reactor is closed (shutdown must always reach the drain). The park
    /// itself blocks in [`Reactor::wait`] — no timed polling — relying on
    /// `resume`/`shutdown` raising `EV_CONTROL`/closing the reactor.
    fn park_while_paused(&self) {
        loop {
            {
                let mut control = self.control.lock_unpoisoned();
                if !control.paused || self.reactor.is_closed() {
                    control.parked = false;
                    return;
                }
                if !control.parked {
                    control.parked = true;
                    self.control_changed.notify_all();
                }
            }
            let wake = self.reactor.wait();
            self.record_wake(&wake);
        }
    }

    /// Folds one successful fused pass into the per-request service-time
    /// estimate (EWMA, ~4-pass horizon). Only the dispatcher writes, so the
    /// load/store pair needs no compare-and-swap; clamped to ≥ 1 ns because
    /// 0 means "nothing measured yet".
    fn observe_service_time(&self, elapsed: Duration, members: usize) {
        let sample = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX) / members.max(1) as u64;
        let prev = self.stats.est_request_ns.load(Ordering::SeqCst);
        let next = if prev == 0 {
            sample
        } else {
            (prev.saturating_mul(3).saturating_add(sample)) / 4
        };
        self.stats
            .est_request_ns
            .store(next.max(1), Ordering::SeqCst);
    }
}

/// One registered model: executed in-process or routed across shard
/// workers. Classification treats both uniformly through
/// [`forward_rows`](ModelEntry::forward_rows); perf prediction needs the
/// single-process workload and is only available on local entries.
enum ModelEntry {
    Local(Box<ServedModel>),
    Sharded(Box<ShardedModel>),
}

impl ModelEntry {
    fn name(&self) -> &str {
        match self {
            ModelEntry::Local(m) => m.name(),
            ModelEntry::Sharded(m) => m.name(),
        }
    }

    /// Logit rows for `nodes`, bit-identical between the two variants (the
    /// shard plan's contract, pinned by `tests/shard_differential.rs`).
    fn forward_rows(&self, nodes: &[usize]) -> Result<Tensor> {
        match self {
            ModelEntry::Local(m) => Ok(m.model().forward_rows(m.graph(), nodes)?),
            ModelEntry::Sharded(m) => m.forward_rows(nodes),
        }
    }

    fn as_local(&self) -> Option<&ServedModel> {
        match self {
            ModelEntry::Local(m) => Some(m),
            ModelEntry::Sharded(_) => None,
        }
    }
}

/// The serving front-end: owns trained [`ServedModel`]s (and/or
/// [`ShardedModel`] routers) and the platform suite, and answers
/// [`ServeRequest`]s either synchronously ([`serve_one`](Server::serve_one))
/// or through the queued, batching dispatcher ([`spawn`](Server::spawn)).
pub struct Server {
    models: BTreeMap<String, ModelEntry>,
    platforms: Vec<Box<dyn Platform>>,
    config: ServerConfig,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("models", &self.model_names())
            .field("platforms", &self.platforms.len())
            .field("config", &self.config)
            .finish()
    }
}

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

impl Server {
    /// An empty server with the default configuration and the full platform
    /// suite ([`suite::all_platforms`]) as backend candidates.
    pub fn new() -> Self {
        Self::with_config(ServerConfig::default())
    }

    /// An empty server with an explicit configuration.
    pub fn with_config(config: ServerConfig) -> Self {
        Self {
            models: BTreeMap::new(),
            platforms: suite::all_platforms(),
            config,
        }
    }

    /// Replaces the backend platform suite the router scores.
    #[must_use]
    pub fn with_platforms(mut self, platforms: Vec<Box<dyn Platform>>) -> Self {
        self.platforms = platforms;
        self
    }

    /// Registers a served model (replacing any previous model of the same
    /// name).
    #[must_use]
    pub fn register(mut self, model: ServedModel) -> Self {
        self.models
            .insert(model.name().to_string(), ModelEntry::Local(Box::new(model)));
        self
    }

    /// Registers a sharded model (replacing any previous model of the same
    /// name): classification requests are routed across its shard workers,
    /// bit-identical to a local registration of the same trained model.
    /// Perf-prediction requests against a sharded model report
    /// [`ServeError::NoEligibleBackend`].
    #[must_use]
    pub fn register_sharded(mut self, model: ShardedModel) -> Self {
        self.models.insert(
            model.name().to_string(),
            ModelEntry::Sharded(Box::new(model)),
        );
        self
    }

    /// Names of every served model, sorted.
    pub fn model_names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Answers one request synchronously on the calling thread — the
    /// sequential oracle the batched path is bit-identical to.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] / [`ServeError::UnknownBackend`] /
    /// [`ServeError::NoEligibleBackend`] for unroutable requests, plus
    /// model-execution and simulation failures.
    pub fn serve_one(&self, request: &ServeRequest) -> Result<ServeResponse> {
        match request {
            ServeRequest::Classify { model, nodes } => {
                let entry = self.lookup(model)?;
                Ok(ServeResponse::Classification(classify(entry, nodes)?))
            }
            ServeRequest::PredictPerf { model, backend } => {
                let entry = self.lookup(model)?;
                // Perf routing simulates the single-process workload; a
                // sharded model has no eligible backend in the suite.
                let served = entry
                    .as_local()
                    .ok_or_else(|| ServeError::NoEligibleBackend {
                        model: entry.name().to_string(),
                    })?;
                Ok(ServeResponse::Perf(self.predict_perf(served, backend)?))
            }
        }
    }

    /// Starts the dispatcher thread and hands back the (cloneable) client
    /// handle. The server shuts down when [`Handle::shutdown`] is called or
    /// the last handle is dropped — either way the queue is drained and
    /// every accepted ticket resolves first.
    pub fn spawn(self) -> Handle {
        let shard_stats = self
            .models
            .values()
            .filter_map(|entry| match entry {
                ModelEntry::Sharded(m) => Some(m.stats_arc()),
                ModelEntry::Local(_) => None,
            })
            .collect();
        let shared = Arc::new(Shared::new(&self.config, shard_stats));
        // Worker death is a routine scheduling event: every shard
        // supervisor pings the reactor when a recovery transition completes.
        for entry in self.models.values() {
            if let ModelEntry::Sharded(m) = entry {
                m.set_recovery_waker(shared.reactor.waker(EV_RECOVERY));
            }
        }
        let dispatcher_shared = Arc::clone(&shared);
        let thread = thread::spawn_named("gcod-serve-dispatcher", move || {
            self.dispatcher_loop(&dispatcher_shared)
        });
        Handle {
            shared: Arc::clone(&shared),
            joiner: Arc::new(Joiner {
                shared,
                thread: Mutex::new(Some(thread)),
            }),
        }
    }

    fn lookup(&self, name: &str) -> Result<&ModelEntry> {
        self.models
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel {
                name: name.to_string(),
                known: self.model_names(),
            })
    }

    fn predict_perf(&self, served: &ServedModel, backend: &Backend) -> Result<PerfPrediction> {
        match backend {
            Backend::Auto => {
                let candidates = self
                    .platforms
                    .iter()
                    .filter(|p| served.request_for(p.as_ref()).is_some())
                    .count();
                let (index, report) =
                    cheapest_platform(&self.platforms, |p| served.request_for(p))?.ok_or_else(
                        || ServeError::NoEligibleBackend {
                            model: served.name().to_string(),
                        },
                    )?;
                Ok(PerfPrediction {
                    model: served.name().to_string(),
                    platform: self.platforms[index].name().to_string(),
                    report,
                    candidates,
                })
            }
            Backend::Named(name) => {
                let platform = self
                    .platforms
                    .iter()
                    .find(|p| p.name() == name)
                    .ok_or_else(|| ServeError::UnknownBackend { name: name.clone() })?;
                let request = served.request_for(platform.as_ref()).ok_or_else(|| {
                    ServeError::NoEligibleBackend {
                        model: served.name().to_string(),
                    }
                })?;
                let report = platform.simulate(request)?;
                Ok(PerfPrediction {
                    model: served.name().to_string(),
                    platform: name.clone(),
                    report,
                    candidates: 1,
                })
            }
        }
    }

    /// The reactor loop: pop greedily; when the queue runs dry, block in
    /// [`Reactor::wait`] until something is raised. Termination is decided
    /// on the *queue's* closed flag (which shutdown sets before closing the
    /// reactor): once the queue is closed no push can succeed, so observing
    /// closed-and-empty proves every accepted submission has been executed
    /// — the graceful-drain contract.
    fn dispatcher_loop(self, shared: &Shared) {
        loop {
            shared.park_while_paused();
            let first = match shared.queue.try_pop() {
                Some(submission) => submission,
                None => {
                    if shared.queue.is_closed() {
                        if shared.queue.is_empty() {
                            break;
                        }
                        // A submission raced in between our pop and the
                        // close; go around and pop it normally.
                        continue;
                    }
                    let wake = shared.reactor.wait();
                    shared.record_wake(&wake);
                    continue;
                }
            };
            let mut pending = vec![first];
            while pending.len() < self.config.max_batch.max(1) {
                match shared.queue.try_pop() {
                    Some(submission) => pending.push(submission),
                    None => break,
                }
            }
            shared.stats.batches.fetch_add(1, Ordering::SeqCst);
            self.execute_pending(shared, pending);
        }
    }

    /// Executes one dispatcher batch: deadline triage, then perf requests
    /// individually and classification requests fused per served model, in
    /// fusion windows sized by the oldest deadline in each group.
    fn execute_pending(&self, shared: &Shared, pending: Vec<Submission>) {
        // gcod-check: allow(wall-clock) — request-deadline triage is real elapsed time by definition; simulated time lives in gcod-platform.
        let now = Instant::now();
        let mut classify = Vec::new();
        let mut perf = Vec::new();
        for submission in pending {
            if submission.deadline.map(|d| now >= d).unwrap_or(false) {
                shared.stats.expired.fetch_add(1, Ordering::SeqCst);
                finish(
                    shared,
                    submission.completion,
                    Err(ServeError::Rejected(RejectReason::DeadlineExpired)),
                );
                continue;
            }
            match submission.request {
                ServeRequest::Classify { .. } => classify.push(submission),
                ServeRequest::PredictPerf { .. } => perf.push(submission),
            }
        }
        for submission in perf {
            let result = self.serve_one(&submission.request);
            finish(shared, submission.completion, result);
        }
        let groups = group_in_arrival_order(classify, |s| s.request.model().to_string());
        for (model_name, members) in groups {
            // Adaptive fusion window: one fused pass may carry only as many
            // members as the group's *oldest* deadline can absorb at the
            // observed per-request service time — mixed fast/slow traffic
            // must not convoy behind one maximal pass. Without deadlines or
            // without an estimate the window is the configured max, which
            // is what keeps this bit-identical to fixed-batch execution.
            let slack_ns = members.iter().filter_map(|m| m.deadline).min().map(|d| {
                u64::try_from(d.saturating_duration_since(now).as_nanos()).unwrap_or(u64::MAX)
            });
            let est = shared.stats.est_request_ns.load(Ordering::SeqCst);
            let window = adaptive_max_batch(self.config.max_batch, slack_ns, est);
            let mut members = members;
            while !members.is_empty() {
                let rest = members.split_off(window.min(members.len()));
                self.execute_classify_group(shared, &model_name, members);
                members = rest;
            }
        }
    }

    /// Runs one coalesced classification window as a single fused forward
    /// pass, splitting the stacked logits back out per member. Falls back to
    /// per-member execution when the fused pass fails (e.g. one member holds
    /// an out-of-range node index) so a bad request cannot poison its batch
    /// mates.
    fn execute_classify_group(&self, shared: &Shared, model_name: &str, members: Vec<Submission>) {
        shared
            .stats
            .largest_batch
            .fetch_max(members.len(), Ordering::SeqCst);
        let entry = match self.lookup(model_name) {
            Ok(entry) => entry,
            Err(e) => {
                for member in members {
                    finish(shared, member.completion, Err(e.clone()));
                }
                return;
            }
        };
        let member_nodes: Vec<Vec<usize>> = members
            .iter()
            .map(|m| match &m.request {
                ServeRequest::Classify { nodes, .. } => nodes.clone(),
                ServeRequest::PredictPerf { .. } => unreachable!("perf routed separately"),
            })
            .collect();
        let lens: Vec<usize> = member_nodes.iter().map(Vec::len).collect();
        let stacked_nodes: Vec<usize> = member_nodes.iter().flatten().copied().collect();
        // gcod-check: allow(wall-clock) — service-time observation feeds the adaptive-batching estimate.
        let started = Instant::now();
        let fused = entry
            .forward_rows(&stacked_nodes)
            .and_then(|stacked| split_stacked(&stacked, &lens).map_err(ServeError::from));
        match fused {
            Ok(pieces) => {
                shared.observe_service_time(started.elapsed(), members.len());
                for ((member, nodes), logits) in members.into_iter().zip(member_nodes).zip(pieces) {
                    let response = ServeResponse::Classification(Classification {
                        model: entry.name().to_string(),
                        nodes,
                        classes: logits.argmax_rows(),
                        logits,
                    });
                    finish(shared, member.completion, Ok(response));
                }
            }
            Err(_) => {
                for member in members {
                    let result = self.serve_one(&member.request);
                    finish(shared, member.completion, result);
                }
            }
        }
    }
}

/// Answers one classification against a (local or sharded) model entry.
fn classify(entry: &ModelEntry, nodes: &[usize]) -> Result<Classification> {
    let logits = entry.forward_rows(nodes)?;
    Ok(Classification {
        model: entry.name().to_string(),
        nodes: nodes.to_vec(),
        classes: logits.argmax_rows(),
        logits,
    })
}

/// Fulfils a ticket and maintains the completion counters.
fn finish(shared: &Shared, completion: Completion, result: Result<ServeResponse>) {
    let counter = if result.is_ok() {
        &shared.stats.completed_ok
    } else {
        &shared.stats.completed_err
    };
    counter.fetch_add(1, Ordering::SeqCst);
    completion.fulfill(result);
}

/// Joins the dispatcher exactly once, at explicit shutdown or when the last
/// handle is dropped.
struct Joiner {
    shared: Arc<Shared>,
    thread: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Joiner {
    fn shutdown_and_join(&self) {
        // Order matters: close the queue first (rejects new submissions,
        // keeps the backlog poppable — the dispatcher's termination proof
        // relies on queue-closed preceding reactor-closed), then close the
        // reactor (wakes a blocked dispatcher), then clear any pause under
        // the control lock so a parked dispatcher and a blocked
        // `Handle::pause` both observe the shutdown.
        self.shared.queue.close();
        self.shared.reactor.close();
        {
            let mut control = self.shared.control.lock_unpoisoned();
            control.paused = false;
        }
        self.shared.control_changed.notify_all();
        let handle = self.thread.lock_unpoisoned().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for Joiner {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Per-submission options of [`Handle::submit`]: an optional deadline and
/// the full-queue policy, builder-style.
///
/// ```
/// use gcod_serve::SubmitOptions;
/// use std::time::Duration;
///
/// // Fire-and-forget, server defaults:
/// let _ = SubmitOptions::default();
/// // Must answer within 250ms, and wait for a queue slot rather than
/// // bounce on backpressure:
/// let _ = SubmitOptions::default()
///     .deadline(Duration::from_millis(250))
///     .blocking();
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    deadline: Option<Duration>,
    blocking: bool,
}

impl SubmitOptions {
    /// The default options: no explicit deadline (the server's
    /// `default_deadline` applies), non-blocking submission.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requires an answer within `within` of submission; requests still
    /// queued when the deadline passes resolve with
    /// [`RejectReason::DeadlineExpired`] instead of executing, and the
    /// deadline participates in overload shedding and adaptive batching.
    #[must_use]
    pub fn deadline(mut self, within: Duration) -> Self {
        self.deadline = Some(within);
        self
    }

    /// Blocks the submitting thread while the queue is full instead of
    /// rejecting with [`RejectReason::QueueFull`].
    #[must_use]
    pub fn blocking(mut self) -> Self {
        self.blocking = true;
        self
    }

    /// The requested deadline, if any.
    #[must_use]
    pub fn deadline_within(&self) -> Option<Duration> {
        self.deadline
    }

    /// Whether a full queue blocks instead of rejecting.
    #[must_use]
    pub fn is_blocking(&self) -> bool {
        self.blocking
    }
}

/// The cloneable client handle of a spawned [`Server`].
///
/// Submissions return a [`Ticket`] immediately (async-style); clients block
/// on [`Ticket::wait`] when they need the answer. The dispatcher shuts down
/// — draining all accepted work first — on [`shutdown`](Handle::shutdown) or
/// when the last clone is dropped.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
    joiner: Arc<Joiner>,
}

impl std::fmt::Debug for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle")
            .field("queue_len", &self.shared.queue.len())
            .field("stats", &self.shared.server_stats())
            .finish()
    }
}

impl Handle {
    /// Submits a request under `options` and returns its [`Ticket`].
    ///
    /// This is the single submission surface: `SubmitOptions::default()`
    /// submits without blocking under the server's default deadline;
    /// [`SubmitOptions::deadline`] attaches a per-request deadline;
    /// [`SubmitOptions::blocking`] waits for a queue slot instead of
    /// bouncing on backpressure.
    ///
    /// # Errors
    ///
    /// All admission failures surface as [`ServeError::Rejected`]:
    ///
    /// * [`RejectReason::QueueFull`] — the bounded queue is at capacity and
    ///   the options are non-blocking (nothing was enqueued),
    /// * [`RejectReason::Overloaded`] — the deadline would expire waiting
    ///   for the current backlog at the observed service time (shed at the
    ///   door instead of doing doomed work),
    /// * [`RejectReason::ShuttingDown`] — shutdown has begun.
    pub fn submit(&self, request: ServeRequest, options: SubmitOptions) -> Result<Ticket> {
        let within = options.deadline_within().or(self.shared.default_deadline);
        // Admission control: with a deadline and a warmed service-time
        // estimate, reject work whose deadline the backlog already spends.
        if let Some(within) = within {
            let est = self.shared.stats.est_request_ns.load(Ordering::SeqCst);
            if est > 0 {
                let backlog = self.shared.queue.len() as u64 + 1;
                let predicted = est.saturating_mul(backlog);
                let budget = u64::try_from(within.as_nanos()).unwrap_or(u64::MAX);
                if predicted > budget {
                    self.shared.stats.rejected.fetch_add(1, Ordering::SeqCst);
                    self.shared.stats.shed.fetch_add(1, Ordering::SeqCst);
                    return Err(ServeError::Rejected(RejectReason::Overloaded));
                }
            }
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::SeqCst);
        let (ticket, completion) = ticket_pair(id);
        let submission = Submission {
            request,
            // gcod-check: allow(wall-clock) — client deadlines are wall-clock contracts, not simulated time.
            deadline: within.map(|d| Instant::now() + d),
            completion,
        };
        let pushed = if options.is_blocking() {
            self.shared.queue.push_blocking(submission)
        } else {
            self.shared.queue.try_push(submission)
        };
        match pushed {
            Ok(()) => {
                self.shared.stats.submitted.fetch_add(1, Ordering::SeqCst);
                self.shared.reactor.raise(EV_SUBMIT);
                Ok(ticket)
            }
            Err(PushError::Full(_rejected)) => {
                self.shared.stats.rejected.fetch_add(1, Ordering::SeqCst);
                Err(ServeError::Rejected(RejectReason::QueueFull {
                    capacity: self.shared.queue_capacity,
                }))
            }
            Err(PushError::Closed(_rejected)) => {
                Err(ServeError::Rejected(RejectReason::ShuttingDown))
            }
        }
    }

    /// Submits a request with an explicit deadline measured from now.
    ///
    /// # Errors
    ///
    /// As [`submit`](Handle::submit).
    #[deprecated(
        since = "0.2.0",
        note = "use submit(request, SubmitOptions::default().deadline(within))"
    )]
    pub fn submit_with_deadline(&self, request: ServeRequest, within: Duration) -> Result<Ticket> {
        self.submit(request, SubmitOptions::default().deadline(within))
    }

    /// Submits a request, blocking while the queue is full instead of
    /// reporting backpressure.
    ///
    /// # Errors
    ///
    /// As [`submit`](Handle::submit).
    #[deprecated(
        since = "0.2.0",
        note = "use submit(request, SubmitOptions::default().blocking())"
    )]
    pub fn submit_blocking(&self, request: ServeRequest) -> Result<Ticket> {
        self.submit(request, SubmitOptions::default().blocking())
    }

    /// Number of submissions currently queued (excluding the batch being
    /// executed).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Pauses the dispatcher **between** batches and returns once it is
    /// parked: afterwards no new batch starts until [`resume`](Handle::resume)
    /// (submissions keep queueing — this is how tests and drain-style
    /// maintenance build deterministic queue states).
    pub fn pause(&self) {
        {
            let mut control = self.shared.control.lock_unpoisoned();
            control.paused = true;
        }
        self.shared.reactor.raise(EV_CONTROL);
        let mut control = self.shared.control.lock_unpoisoned();
        while !control.parked && !self.shared.reactor.is_closed() {
            // Untimed wait: the dispatcher notifies `control_changed` when
            // it parks, and shutdown notifies it after closing the reactor.
            control = self.shared.control_changed.wait(control);
        }
    }

    /// Resumes a paused dispatcher.
    pub fn resume(&self) {
        {
            let mut control = self.shared.control.lock_unpoisoned();
            control.paused = false;
        }
        self.shared.control_changed.notify_all();
        self.shared.reactor.raise(EV_CONTROL);
    }

    /// A snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.server_stats()
    }

    /// Shuts the server down gracefully: stops accepting submissions, drains
    /// and resolves every accepted ticket, joins the dispatcher, and returns
    /// the final counters. Idempotent; later submissions report
    /// [`RejectReason::ShuttingDown`].
    pub fn shutdown(&self) -> ServerStats {
        self.joiner.shutdown_and_join();
        self.shared.server_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::{GnnModel, ModelConfig};

    /// Two tiny served models (distinct datasets) on a deterministic seed —
    /// building the server twice yields bit-identical models, which is what
    /// lets the tests compare a spawned server against a fresh oracle.
    fn build_server(config: ServerConfig) -> Server {
        let mut server = Server::with_config(config);
        for (name, nodes, seed) in [("alpha", 70usize, 5u64), ("beta", 50, 9)] {
            let graph = GraphGenerator::new(seed)
                .generate(&DatasetProfile::custom(name, nodes, nodes * 3, 8, 3))
                .unwrap();
            let model = GnnModel::new(ModelConfig::gcn(&graph), seed).unwrap();
            server = server.register(ServedModel::new(format!("{name}-gcn"), graph, model));
        }
        server
    }

    fn classify_requests() -> Vec<ServeRequest> {
        vec![
            ServeRequest::classify("alpha-gcn", vec![0, 3, 7]),
            ServeRequest::classify("beta-gcn", vec![1, 2]),
            ServeRequest::classify("alpha-gcn", vec![7, 7, 12]),
            ServeRequest::classify("beta-gcn", vec![0]),
            ServeRequest::classify("alpha-gcn", vec![42]),
        ]
    }

    #[test]
    fn serve_one_answers_classification_and_perf() {
        let server = build_server(ServerConfig::default());
        let response = server
            .serve_one(&ServeRequest::classify("alpha-gcn", vec![0, 1]))
            .unwrap();
        let c = response.as_classification().unwrap();
        assert_eq!(c.nodes, vec![0, 1]);
        assert_eq!(c.classes.len(), 2);
        assert_eq!(c.logits.shape(), (2, 3));
        let response = server
            .serve_one(&ServeRequest::predict_perf("alpha-gcn"))
            .unwrap();
        let p = response.as_perf().unwrap();
        assert!(p.candidates >= 9, "all split-less platforms are candidates");
        assert!(p.report.latency_ms > 0.0);
    }

    #[test]
    fn unknown_names_are_reported_with_the_known_set() {
        let server = build_server(ServerConfig::default());
        let err = server
            .serve_one(&ServeRequest::classify("nope", vec![0]))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::UnknownModel { ref name, ref known }
                if name == "nope" && known == &vec!["alpha-gcn".to_string(), "beta-gcn".to_string()]
        ));
        let err = server
            .serve_one(&ServeRequest::PredictPerf {
                model: "alpha-gcn".into(),
                backend: Backend::named("not-a-platform"),
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownBackend { .. }));
        // Split-aware accelerators are ineligible for split-less models.
        let err = server
            .serve_one(&ServeRequest::PredictPerf {
                model: "alpha-gcn".into(),
                backend: Backend::named("gcod"),
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::NoEligibleBackend { .. }));
    }

    #[test]
    fn auto_routing_picks_the_cheapest_eligible_backend() {
        let server = build_server(ServerConfig::default());
        let auto = server
            .serve_one(&ServeRequest::predict_perf("beta-gcn"))
            .unwrap();
        let auto = auto.as_perf().unwrap();
        // No named backend beats the auto-routed one.
        for platform in suite::all_platforms() {
            let named = server.serve_one(&ServeRequest::PredictPerf {
                model: "beta-gcn".into(),
                backend: Backend::named(platform.name()),
            });
            if let Ok(response) = named {
                assert!(
                    auto.report.latency_ms <= response.as_perf().unwrap().report.latency_ms,
                    "{} undercuts the auto route",
                    platform.name()
                );
            }
        }
    }

    #[test]
    fn batched_execution_is_bit_identical_to_the_sequential_oracle() {
        let oracle = build_server(ServerConfig::default());
        let requests = classify_requests();
        let expected: Vec<_> = requests.iter().map(|r| oracle.serve_one(r)).collect();

        let handle = build_server(ServerConfig::default()).spawn();
        // Pause so every submission lands in one dispatcher drain — maximal
        // coalescing.
        handle.pause();
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| handle.submit(r.clone(), SubmitOptions::default()).unwrap())
            .collect();
        handle.resume();
        for (ticket, expected) in tickets.into_iter().zip(expected) {
            assert_eq!(ticket.wait(), expected);
        }
        let stats = handle.shutdown();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed_ok, 5);
        assert!(stats.largest_batch >= 3, "alpha requests must coalesce");
        assert!(stats.est_request_ns > 0, "fused passes warm the estimate");
    }

    #[test]
    fn full_queue_reports_backpressure_without_losing_accepted_work() {
        let handle = build_server(ServerConfig {
            queue_capacity: 2,
            ..ServerConfig::default()
        })
        .spawn();
        handle.pause();
        let a = handle
            .submit(
                ServeRequest::classify("alpha-gcn", vec![0]),
                SubmitOptions::default(),
            )
            .unwrap();
        let b = handle
            .submit(
                ServeRequest::classify("alpha-gcn", vec![1]),
                SubmitOptions::default(),
            )
            .unwrap();
        let err = handle
            .submit(
                ServeRequest::classify("alpha-gcn", vec![2]),
                SubmitOptions::default(),
            )
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::Rejected(RejectReason::QueueFull { capacity: 2 })
        );
        assert_eq!(handle.queue_len(), 2);
        handle.resume();
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
        let stats = handle.shutdown();
        assert_eq!((stats.submitted, stats.rejected), (2, 1));
        assert_eq!(stats.shed, 0, "queue-full is not overload shedding");
    }

    #[test]
    fn submit_blocking_waits_for_a_slot_instead_of_rejecting() {
        let handle = build_server(ServerConfig {
            queue_capacity: 1,
            ..ServerConfig::default()
        })
        .spawn();
        handle.pause();
        let first = handle
            .submit(
                ServeRequest::classify("beta-gcn", vec![0]),
                SubmitOptions::default(),
            )
            .unwrap();
        let blocked = {
            let handle = handle.clone();
            std::thread::spawn(move || {
                handle
                    .submit(
                        ServeRequest::classify("beta-gcn", vec![1]),
                        SubmitOptions::default().blocking(),
                    )
                    .unwrap()
                    .wait()
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        handle.resume();
        assert!(first.wait().is_ok());
        assert!(blocked.join().unwrap().is_ok());
        handle.shutdown();
    }

    #[test]
    fn expired_deadlines_resolve_with_deadline_expired() {
        let handle = build_server(ServerConfig::default()).spawn();
        handle.pause();
        let expired = handle
            .submit(
                ServeRequest::classify("alpha-gcn", vec![0]),
                SubmitOptions::default().deadline(Duration::ZERO),
            )
            .unwrap();
        let alive = handle
            .submit(
                ServeRequest::classify("alpha-gcn", vec![0]),
                SubmitOptions::default(),
            )
            .unwrap();
        handle.resume();
        assert_eq!(
            expired.wait(),
            Err(ServeError::Rejected(RejectReason::DeadlineExpired))
        );
        assert!(alive.wait().is_ok());
        let stats = handle.shutdown();
        assert_eq!(stats.expired, 1);
        assert_eq!((stats.completed_ok, stats.completed_err), (1, 1));
    }

    #[test]
    fn warmed_estimate_sheds_doomed_deadlines_at_the_door() {
        let handle = build_server(ServerConfig::default()).spawn();
        handle.pause();
        // Fake a warmed estimate: 1s per request. With one queued request,
        // a 100ms deadline predicts 2s of wait — shed at submission.
        let queued = handle
            .submit(
                ServeRequest::classify("alpha-gcn", vec![0]),
                SubmitOptions::default(),
            )
            .unwrap();
        handle
            .shared
            .stats
            .est_request_ns
            .store(1_000_000_000, Ordering::SeqCst);
        let err = handle
            .submit(
                ServeRequest::classify("alpha-gcn", vec![1]),
                SubmitOptions::default().deadline(Duration::from_millis(100)),
            )
            .unwrap_err();
        assert_eq!(err, ServeError::Rejected(RejectReason::Overloaded));
        // A generous deadline clears admission even with the backlog.
        let generous = handle
            .submit(
                ServeRequest::classify("alpha-gcn", vec![1]),
                SubmitOptions::default().deadline(Duration::from_secs(3600)),
            )
            .unwrap();
        // Deadline-less submissions are never shed.
        let free = handle
            .submit(
                ServeRequest::classify("alpha-gcn", vec![2]),
                SubmitOptions::default(),
            )
            .unwrap();
        handle.resume();
        assert!(queued.wait().is_ok());
        assert!(generous.wait().is_ok());
        assert!(free.wait().is_ok());
        let stats = handle.shutdown();
        assert_eq!((stats.rejected, stats.shed), (1, 1));
        assert_eq!(stats.completed_ok, 3);
    }

    #[test]
    fn adaptive_window_splits_tight_deadline_groups_deterministically() {
        let oracle = build_server(ServerConfig::default());
        let requests: Vec<ServeRequest> = (0..4)
            .map(|i| ServeRequest::classify("alpha-gcn", vec![i, i + 1]))
            .collect();
        let expected: Vec<_> = requests.iter().map(|r| oracle.serve_one(r)).collect();

        let handle = build_server(ServerConfig::default()).spawn();
        handle.pause();
        // 10s deadlines with a faked 30s/request estimate: the fusion
        // window is deterministically 1 (slack/est < 1 clamps to one), so
        // the group executes as four single-member passes — and must still
        // be bit-identical to the oracle.
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| {
                handle
                    .submit(
                        r.clone(),
                        SubmitOptions::default().deadline(Duration::from_secs(10)),
                    )
                    .unwrap()
            })
            .collect();
        handle
            .shared
            .stats
            .est_request_ns
            .store(30_000_000_000, Ordering::SeqCst);
        handle.resume();
        for (ticket, expected) in tickets.iter().zip(expected) {
            assert_eq!(ticket.wait(), expected);
        }
        let stats = handle.shutdown();
        assert_eq!(
            stats.largest_batch, 1,
            "tight deadlines must cap every fusion window at one"
        );
        assert_eq!(stats.completed_ok, 4);
        assert_eq!(stats.batches, 1, "one dispatcher drain, four windows");
    }

    #[test]
    fn shutdown_drains_accepted_work_and_rejects_later_submissions() {
        let handle = build_server(ServerConfig::default()).spawn();
        handle.pause();
        let tickets: Vec<Ticket> = classify_requests()
            .into_iter()
            .map(|r| handle.submit(r, SubmitOptions::default()).unwrap())
            .collect();
        // Shutdown while paused with a full backlog: the drain must still
        // execute and resolve every accepted ticket.
        let stats = handle.shutdown();
        assert_eq!(stats.completed_ok, 5);
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        assert_eq!(
            handle
                .submit(
                    ServeRequest::classify("alpha-gcn", vec![0]),
                    SubmitOptions::default()
                )
                .unwrap_err(),
            ServeError::Rejected(RejectReason::ShuttingDown)
        );
    }

    #[test]
    fn bad_member_cannot_poison_its_batch_mates() {
        let oracle = build_server(ServerConfig::default());
        let good = ServeRequest::classify("alpha-gcn", vec![1, 2]);
        let bad = ServeRequest::classify("alpha-gcn", vec![10_000]);
        let expected_good = oracle.serve_one(&good);

        let handle = build_server(ServerConfig::default()).spawn();
        handle.pause();
        let good_ticket = handle.submit(good, SubmitOptions::default()).unwrap();
        let bad_ticket = handle.submit(bad, SubmitOptions::default()).unwrap();
        handle.resume();
        assert_eq!(good_ticket.wait(), expected_good);
        assert!(matches!(bad_ticket.wait(), Err(ServeError::Nn(_))));
        handle.shutdown();
    }

    #[test]
    fn last_handle_drop_shuts_the_dispatcher_down() {
        let handle = build_server(ServerConfig::default()).spawn();
        let ticket = handle
            .submit(
                ServeRequest::classify("beta-gcn", vec![0]),
                SubmitOptions::default(),
            )
            .unwrap();
        drop(handle); // joins the dispatcher after the drain
        assert!(ticket.wait().is_ok());
    }

    /// The deprecated submit trio must keep working for one release; this
    /// is its only caller in the repo.
    #[test]
    #[allow(deprecated)]
    fn deprecated_submit_shims_delegate_to_the_new_surface() {
        let handle = build_server(ServerConfig::default()).spawn();
        // Deadline shim first: the estimate is still cold, so the zero
        // deadline reaches triage instead of being shed at admission.
        handle.pause();
        let expired = handle
            .submit_with_deadline(ServeRequest::classify("alpha-gcn", vec![0]), Duration::ZERO)
            .unwrap();
        handle.resume();
        assert_eq!(
            expired.wait(),
            Err(ServeError::Rejected(RejectReason::DeadlineExpired))
        );
        let blocking = handle
            .submit_blocking(ServeRequest::classify("alpha-gcn", vec![0]))
            .unwrap();
        assert!(blocking.wait().is_ok());
        handle.shutdown();
    }
}
