//! Error type of the serving front-end.

use gcod_nn::NnError;
use gcod_platform::PlatformError;
use std::fmt;

/// Why the server refused to run a request, carried by
/// [`ServeError::Rejected`].
///
/// A rejection is a *scheduling* outcome, not an execution failure: the
/// request itself was well-formed, but the server declined to run it (or to
/// keep running it) for capacity or lifecycle reasons. Load-harness and
/// retry code should match on this enum instead of parsing error strings —
/// the variants spell out the correct reaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The bounded submission queue is at capacity — backpressure. Retry
    /// later, submit with [`SubmitOptions::blocking`], or raise
    /// `queue_capacity`.
    ///
    /// [`SubmitOptions::blocking`]: crate::SubmitOptions::blocking
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The request's deadline passed before the server got to execute it.
    /// Retrying is only useful with a fresh deadline.
    DeadlineExpired,
    /// Admission control: given the current queue depth and the observed
    /// per-request service time, this request's deadline would expire while
    /// it waited, so the server sheds it at submission instead of doing the
    /// work and throwing the answer away. Back off before retrying.
    Overloaded,
    /// The server is shutting down and accepts no further submissions
    /// (already-accepted work is still drained and completed). Do not retry.
    ShuttingDown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => write!(
                f,
                "submission queue full (capacity {capacity}); retry later or submit blocking"
            ),
            RejectReason::DeadlineExpired => {
                write!(f, "request deadline expired before execution")
            }
            RejectReason::Overloaded => write!(
                f,
                "server overloaded: the deadline would expire before the queue drains"
            ),
            RejectReason::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

/// Errors the serving layer reports to clients.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The server refused to run the request; the [`RejectReason`] says why
    /// and what a sensible client does next.
    Rejected(RejectReason),
    /// The request named a model the server does not own.
    UnknownModel {
        /// The name that failed to resolve.
        name: String,
        /// Every model the server currently serves.
        known: Vec<String>,
    },
    /// The request named a backend platform outside the server's suite.
    UnknownBackend {
        /// The name that failed to resolve.
        name: String,
    },
    /// No backend in the suite could take the request (e.g. a split-aware
    /// accelerator was requested for a model served without a GCoD split).
    NoEligibleBackend {
        /// The model the request targeted.
        model: String,
    },
    /// The ticket's work was abandoned without a result (the dispatcher
    /// terminated abnormally). Should not happen in correct operation.
    Canceled,
    /// A model-execution error (shape mismatches, bad node indices).
    Nn(NnError),
    /// A platform-simulation error from the backend router.
    Platform(PlatformError),
    /// A sharded-serving failure: shard planning, the wire protocol, or a
    /// worker process/thread.
    Shard(gcod_shard::ShardError),
}

impl ServeError {
    /// The rejection reason when this error is a scheduling rejection.
    #[must_use]
    pub fn reject_reason(&self) -> Option<RejectReason> {
        match self {
            ServeError::Rejected(reason) => Some(*reason),
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected(reason) => write!(f, "rejected: {reason}"),
            ServeError::UnknownModel { name, known } => write!(
                f,
                "unknown served model `{name}`; server owns: {}",
                known.join(", ")
            ),
            ServeError::UnknownBackend { name } => {
                write!(f, "unknown backend platform `{name}`")
            }
            ServeError::NoEligibleBackend { model } => {
                write!(f, "no eligible backend for model `{model}`")
            }
            ServeError::Canceled => write!(f, "request canceled without a result"),
            ServeError::Nn(e) => write!(f, "model error: {e}"),
            ServeError::Platform(e) => write!(f, "platform error: {e}"),
            ServeError::Shard(e) => write!(f, "sharded serving error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Nn(e) => Some(e),
            ServeError::Platform(e) => Some(e),
            ServeError::Shard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RejectReason> for ServeError {
    fn from(reason: RejectReason) -> Self {
        ServeError::Rejected(reason)
    }
}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> Self {
        ServeError::Nn(e)
    }
}

impl From<PlatformError> for ServeError {
    fn from(e: PlatformError) -> Self {
        ServeError::Platform(e)
    }
}

impl From<gcod_shard::ShardError> for ServeError {
    fn from(e: gcod_shard::ShardError) -> Self {
        ServeError::Shard(e)
    }
}

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_context() {
        let err = ServeError::Rejected(RejectReason::QueueFull { capacity: 8 });
        assert!(err.to_string().contains('8'));
        let err = ServeError::UnknownModel {
            name: "nope".into(),
            known: vec!["cora-gcn".into()],
        };
        let text = err.to_string();
        assert!(text.contains("nope") && text.contains("cora-gcn"));
    }

    #[test]
    fn reject_reasons_are_matchable_and_convert() {
        let err: ServeError = RejectReason::Overloaded.into();
        assert_eq!(err.reject_reason(), Some(RejectReason::Overloaded));
        assert!(ServeError::Canceled.reject_reason().is_none());
        for reason in [
            RejectReason::QueueFull { capacity: 2 },
            RejectReason::DeadlineExpired,
            RejectReason::Overloaded,
            RejectReason::ShuttingDown,
        ] {
            let text = ServeError::Rejected(reason).to_string();
            assert!(text.starts_with("rejected: "), "{text}");
        }
    }

    #[test]
    fn sources_chain_for_wrapped_errors() {
        let err = ServeError::from(NnError::ShapeMismatch {
            context: "bad".into(),
        });
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&ServeError::Canceled).is_none());
    }
}
