//! [`Wire`] codecs for the serving request/response currency, so clients
//! can carry full [`ServeRequest`]s / [`ServeResponse`]s over the shard
//! fabric's framed protocol (the orphan rule places these impls here, next
//! to the types, rather than in `gcod-shard`).

use crate::request::{Backend, Classification, PerfPrediction, ServeRequest, ServeResponse};
use gcod_shard::{Wire, WireError, WireReader, WireResult};

impl Wire for Backend {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Backend::Auto => 0u8.encode(out),
            Backend::Named(name) => {
                1u8.encode(out);
                name.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match u8::decode(r)? {
            0 => Ok(Backend::Auto),
            1 => Ok(Backend::Named(String::decode(r)?)),
            tag => Err(WireError::UnknownTag {
                context: "Backend",
                tag,
            }),
        }
    }
}

impl Wire for ServeRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServeRequest::Classify { model, nodes } => {
                0u8.encode(out);
                model.encode(out);
                nodes.encode(out);
            }
            ServeRequest::PredictPerf { model, backend } => {
                1u8.encode(out);
                model.encode(out);
                backend.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match u8::decode(r)? {
            0 => Ok(ServeRequest::Classify {
                model: String::decode(r)?,
                nodes: Vec::decode(r)?,
            }),
            1 => Ok(ServeRequest::PredictPerf {
                model: String::decode(r)?,
                backend: Backend::decode(r)?,
            }),
            tag => Err(WireError::UnknownTag {
                context: "ServeRequest",
                tag,
            }),
        }
    }
}

impl Wire for Classification {
    fn encode(&self, out: &mut Vec<u8>) {
        self.model.encode(out);
        self.nodes.encode(out);
        self.classes.encode(out);
        self.logits.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Classification {
            model: String::decode(r)?,
            nodes: Vec::decode(r)?,
            classes: Vec::decode(r)?,
            logits: Wire::decode(r)?,
        })
    }
}

impl Wire for PerfPrediction {
    fn encode(&self, out: &mut Vec<u8>) {
        self.model.encode(out);
        self.platform.encode(out);
        self.report.encode(out);
        self.candidates.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(PerfPrediction {
            model: String::decode(r)?,
            platform: String::decode(r)?,
            report: Wire::decode(r)?,
            candidates: usize::decode(r)?,
        })
    }
}

impl Wire for ServeResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServeResponse::Classification(c) => {
                0u8.encode(out);
                c.encode(out);
            }
            ServeResponse::Perf(p) => {
                1u8.encode(out);
                p.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match u8::decode(r)? {
            0 => Ok(ServeResponse::Classification(Classification::decode(r)?)),
            1 => Ok(ServeResponse::Perf(PerfPrediction::decode(r)?)),
            tag => Err(WireError::UnknownTag {
                context: "ServeResponse",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_nn::Tensor;
    use gcod_platform::report::PerfReport;

    #[test]
    fn requests_roundtrip() {
        for request in [
            ServeRequest::classify("cora-gcn", vec![0, 7, 7, 42]),
            ServeRequest::predict_perf("cora-gcn"),
            ServeRequest::PredictPerf {
                model: "m".into(),
                backend: Backend::named("hygcn"),
            },
        ] {
            let back = ServeRequest::from_wire(&request.to_wire()).expect("decode");
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let classification = ServeResponse::Classification(Classification {
            model: "m".into(),
            nodes: vec![3, 1],
            classes: vec![0, 2],
            logits: Tensor::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.0, 0.25, -0.125])
                .expect("logits"),
        });
        let perf = ServeResponse::Perf(PerfPrediction {
            model: "m".into(),
            platform: "gcod".into(),
            report: PerfReport {
                platform: "gcod".into(),
                dataset: "cora".into(),
                model: "gcn".into(),
                latency_ms: 1.25,
                cycles: 1000,
                off_chip_bytes: 4096,
                off_chip_accesses: 64,
                peak_bandwidth_gbps: 25.6,
                utilization: 0.75,
                energy: Default::default(),
                traffic: Default::default(),
            },
            candidates: 9,
        });
        for response in [classification, perf] {
            let back = ServeResponse::from_wire(&response.to_wire()).expect("decode");
            assert_eq!(back, response);
        }
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        let mut bytes = ServeRequest::classify("m", vec![1]).to_wire();
        bytes[0] = 9;
        assert!(matches!(
            ServeRequest::from_wire(&bytes),
            Err(WireError::UnknownTag {
                context: "ServeRequest",
                ..
            })
        ));
    }
}
