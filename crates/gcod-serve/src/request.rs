//! Request and response currency of the serving front-end.

use gcod_nn::Tensor;
use gcod_platform::report::PerfReport;

/// Which backend a perf-prediction request targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Backend {
    /// Route to the platform whose predicted cost
    /// ([`Platform::predicted_cost_ms`](gcod_platform::Platform::predicted_cost_ms))
    /// is lowest among the eligible suite members.
    Auto,
    /// Route to the named platform (e.g. `"gcod"`, `"pyg-cpu"`, `"hygcn"`).
    Named(String),
}

impl Backend {
    /// Convenience constructor for a named backend.
    pub fn named(name: impl Into<String>) -> Self {
        Backend::Named(name.into())
    }
}

/// One client request to the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Classify the given nodes of the named served model's graph. Executes
    /// on the CPU kernel path; compatible requests (same served model, hence
    /// same dataset/model/precision) are coalesced into one fused forward
    /// pass.
    Classify {
        /// Name of the served model to query.
        model: String,
        /// Node indices to classify (order preserved, duplicates allowed).
        nodes: Vec<usize>,
    },
    /// Predict the serving cost of the named model on a backend: the router
    /// scores the platform suite with `Platform::simulate` cost predictions
    /// and dispatches to the cheapest (or the explicitly named) platform
    /// model.
    PredictPerf {
        /// Name of the served model whose workload is simulated.
        model: String,
        /// Backend selection policy.
        backend: Backend,
    },
}

impl ServeRequest {
    /// Convenience constructor for a classification request.
    pub fn classify(model: impl Into<String>, nodes: Vec<usize>) -> Self {
        ServeRequest::Classify {
            model: model.into(),
            nodes,
        }
    }

    /// Convenience constructor for an auto-routed perf prediction.
    pub fn predict_perf(model: impl Into<String>) -> Self {
        ServeRequest::PredictPerf {
            model: model.into(),
            backend: Backend::Auto,
        }
    }

    /// The served-model name this request targets.
    pub fn model(&self) -> &str {
        match self {
            ServeRequest::Classify { model, .. } | ServeRequest::PredictPerf { model, .. } => model,
        }
    }
}

/// Result of a classification request.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// The served model that answered.
    pub model: String,
    /// The queried node indices, in request order.
    pub nodes: Vec<usize>,
    /// Predicted class per queried node (argmax of the logit row).
    pub classes: Vec<usize>,
    /// Raw logit rows, one per queried node.
    pub logits: Tensor,
}

/// Result of a perf-prediction request.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPrediction {
    /// The served model whose workload was simulated.
    pub model: String,
    /// Name of the platform the router dispatched to.
    pub platform: String,
    /// The chosen platform's full simulation report.
    pub report: PerfReport,
    /// How many suite platforms were eligible candidates for the request.
    pub candidates: usize,
}

/// One server response, matching the request kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResponse {
    /// Answer to [`ServeRequest::Classify`].
    Classification(Classification),
    /// Answer to [`ServeRequest::PredictPerf`].
    Perf(PerfPrediction),
}

impl ServeResponse {
    /// The classification payload, if this is a classification response.
    pub fn as_classification(&self) -> Option<&Classification> {
        match self {
            ServeResponse::Classification(c) => Some(c),
            ServeResponse::Perf(_) => None,
        }
    }

    /// The perf payload, if this is a perf response.
    pub fn as_perf(&self) -> Option<&PerfPrediction> {
        match self {
            ServeResponse::Perf(p) => Some(p),
            ServeResponse::Classification(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let req = ServeRequest::classify("cora-gcn", vec![1, 2]);
        assert_eq!(req.model(), "cora-gcn");
        let req = ServeRequest::predict_perf("cora-gcn");
        assert_eq!(
            req,
            ServeRequest::PredictPerf {
                model: "cora-gcn".into(),
                backend: Backend::Auto
            }
        );
        assert_eq!(Backend::named("gcod"), Backend::Named("gcod".into()));
    }
}
