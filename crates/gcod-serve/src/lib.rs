//! Batched inference serving over trained GCoD models.
//!
//! This crate is the front-end the ROADMAP's serving item called for: it
//! owns trained [`GnnModel`](gcod_nn::models::GnnModel)s (packaged as
//! [`ServedModel`]s, typically built via the facade's `Experiment::serve()`
//! stage) and answers two request families through one queued surface:
//!
//! * **node classification** ([`ServeRequest::Classify`]) — executed on the
//!   CPU kernel path. A batcher coalesces compatible requests (same served
//!   model, hence same dataset / architecture / precision) into **one fused
//!   forward pass** over the `gcod-runtime` pool and splits the stacked
//!   logit rows back out per request. Batching is bit-deterministic: the
//!   fused pass produces exactly the bytes of one-by-one execution (pinned
//!   by this crate's tests and the workspace `serve_differential` suite).
//! * **perf prediction** ([`ServeRequest::PredictPerf`]) — routed across the
//!   platform suite by scoring each eligible backend with
//!   [`Platform::predicted_cost_ms`](gcod_platform::Platform::predicted_cost_ms)
//!   and dispatching to the cheapest (or an explicitly named) platform
//!   model.
//!
//! The dispatcher is **event-driven**: submissions, control changes
//! (pause/resume/shutdown) and shard worker-recovery events raise sticky
//! bits on a [`gcod_runtime::Reactor`], and the dispatcher blocks in
//! `Reactor::wait` whenever the queue runs dry — there is no polling
//! interval anywhere in the serving path. Batching is **deadline-aware**:
//! each fused pass is sized so the oldest queued deadline survives it
//! (given the observed per-request service time), and submissions whose
//! deadline would expire waiting for the backlog are shed at the door with
//! [`RejectReason::Overloaded`].
//!
//! The client surface is synchronous-client + handle-based async-style:
//! [`Server::spawn`] starts the dispatcher and returns a cloneable
//! [`Handle`]; [`Handle::submit`] takes the request plus [`SubmitOptions`]
//! (deadline, full-queue policy), enqueues onto a **bounded** queue and
//! returns a [`Ticket`]; [`Ticket::wait`] blocks for the response. All
//! admission failures surface as [`ServeError::Rejected`] carrying a
//! [`RejectReason`]. [`Handle::shutdown`] (or dropping the last handle)
//! drains and resolves every accepted ticket before the dispatcher exits.
//!
//! ```
//! use gcod_graph::{DatasetProfile, GraphGenerator};
//! use gcod_nn::models::{GnnModel, ModelConfig};
//! use gcod_serve::{ServedModel, ServeRequest, Server, SubmitOptions};
//! use std::time::Duration;
//!
//! # fn main() -> gcod_serve::Result<()> {
//! let graph = GraphGenerator::new(1)
//!     .generate(&DatasetProfile::custom("demo", 80, 240, 8, 3))
//!     .expect("generate");
//! let model = GnnModel::new(ModelConfig::gcn(&graph), 1).expect("model");
//! let server = Server::new().register(ServedModel::new("demo-gcn", graph, model));
//!
//! let handle = server.spawn();
//! let ticket = handle.submit(
//!     ServeRequest::classify("demo-gcn", vec![0, 5, 2]),
//!     SubmitOptions::default().deadline(Duration::from_secs(5)),
//! )?;
//! let response = ticket.wait()?;
//! assert_eq!(response.as_classification().unwrap().classes.len(), 3);
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
mod model;
mod request;
mod server;
mod shard;
mod ticket;
mod wire_impls;

pub use error::{RejectReason, Result, ServeError};
pub use model::ServedModel;
pub use request::{Backend, Classification, PerfPrediction, ServeRequest, ServeResponse};
pub use server::{Handle, Server, ServerConfig, ServerStats, SubmitOptions};
pub use shard::{
    ShardHealth, ShardOptions, ShardShutdownOutcome, ShardTransportStats, ShardedModel,
    ShutdownReport, SpawnMode, SupervisorPolicy,
};
pub use ticket::Ticket;
