//! The shard router: serve one model from `k` worker processes (or
//! threads) over the `gcod-shard` wire protocol.
//!
//! ```text
//!                    ┌─ worker 0 (owns partition 0 + halo) ─┐
//! ShardedModel ──UDS─┼─ worker 1 (owns partition 1 + halo) ─┤ halo rows
//!  (router)          └─ worker k-1 ...                      ┘ relayed by
//!                                                             the router
//! ```
//!
//! The router drives the layer lockstep: it broadcasts `RunLayer` to all
//! shards, collects each shard's exported boundary activations, reassembles
//! them into per-shard halo tensors using the plan's halo-source map, and
//! ships them back with `Advance` before the next layer. After the final
//! layer, `forward_rows` answers classification requests with `Gather`
//! round-trips that fetch only the requested rows from the owning shards.
//!
//! Because the plan slices the *full-graph* propagation matrix and keeps
//! local orderings sorted by global id, the logits reassembled here are
//! bit-identical to the single-process `GnnModel::forward` path — pinned by
//! `tests/shard_differential.rs`.

use crate::error::{Result, ServeError};
use gcod_graph::Graph;
use gcod_nn::models::GnnModel;
use gcod_nn::Tensor;
use gcod_runtime::sync::atomic::{AtomicU64, Ordering};
use gcod_runtime::sync::{thread, Mutex};
use gcod_shard::{
    read_frame, write_frame, ShardConn, ShardError, ShardListener, ShardPlan, ShardPlanConfig,
    ShardReply, ShardRequest, TransportKind,
};
use std::path::PathBuf;
use std::sync::Arc;

/// How the router obtains its worker endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnMode {
    /// In-process worker threads (each still speaks the full wire protocol
    /// over a real socket). Cheap, hermetic — the default, and what the
    /// serving benches use.
    Thread,
    /// One OS process per shard: the binary at this path is spawned with
    /// `--addr <addr> --shard <id>` and must delegate to
    /// [`gcod_shard::worker_main`] (the workspace ships
    /// `src/bin/shard_worker.rs`).
    Process(PathBuf),
}

/// Launch options for a [`ShardedModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOptions {
    /// Number of shards (`k`); each owns one graph partition.
    pub shards: usize,
    /// Socket flavour carrying the wire protocol.
    pub transport: TransportKind,
    /// Worker threads or worker processes.
    pub mode: SpawnMode,
}

impl ShardOptions {
    /// `shards` thread-mode workers over the default transport (UDS where
    /// available, TCP loopback otherwise).
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            transport: TransportKind::default(),
            mode: SpawnMode::Thread,
        }
    }

    /// Selects the socket flavour.
    #[must_use]
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Spawns each shard as an OS process running `worker_bin`.
    #[must_use]
    pub fn with_worker_bin(mut self, worker_bin: impl Into<PathBuf>) -> Self {
        self.mode = SpawnMode::Process(worker_bin.into());
        self
    }
}

/// A point-in-time snapshot of shard-transport counters, aggregated over
/// every sharded model a server owns (all zeros when none are sharded).
/// Surfaced through [`ServerStats`](crate::ServerStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardTransportStats {
    /// Worker endpoints across all sharded models.
    pub shards: u64,
    /// Halo (replicated boundary) node slots across all shards — the
    /// memory cost of the BNS-style decomposition.
    pub halo_nodes: u64,
    /// Protocol frames written by routers.
    pub frames_sent: u64,
    /// Protocol frames read by routers.
    pub frames_received: u64,
    /// Bytes written by routers (length prefix and checksum included).
    pub bytes_sent: u64,
    /// Bytes read by routers.
    pub bytes_received: u64,
    /// Halo activation rows relayed between shards across all layers.
    pub halo_rows: u64,
    /// Full layer-lockstep forward passes driven (cached afterwards —
    /// stays at 1 per sharded model under a fixed graph).
    pub forward_passes: u64,
    /// Logit rows answered from shard `Gather` round-trips.
    pub rows_gathered: u64,
    /// Peak number of concurrent `forward_rows` calls queued on one
    /// router (the per-shard request queue depth).
    pub peak_queue_depth: u64,
}

impl ShardTransportStats {
    /// Field-wise sum (peaks take the max), for aggregating across models.
    pub(crate) fn merge(&mut self, other: &ShardTransportStats) {
        self.shards += other.shards;
        self.halo_nodes += other.halo_nodes;
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.halo_rows += other.halo_rows;
        self.forward_passes += other.forward_passes;
        self.rows_gathered += other.rows_gathered;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
    }
}

/// Shared atomics behind [`ShardTransportStats`]; the server's dispatcher
/// holds a clone of the `Arc` so `Handle::stats` sees live counters.
#[derive(Debug, Default)]
pub(crate) struct ShardStatsAtomics {
    shards: AtomicU64,
    halo_nodes: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    halo_rows: AtomicU64,
    forward_passes: AtomicU64,
    rows_gathered: AtomicU64,
    queue_depth: AtomicU64,
    peak_queue_depth: AtomicU64,
}

impl ShardStatsAtomics {
    pub(crate) fn snapshot(&self) -> ShardTransportStats {
        ShardTransportStats {
            shards: self.shards.load(Ordering::SeqCst),
            halo_nodes: self.halo_nodes.load(Ordering::SeqCst),
            frames_sent: self.frames_sent.load(Ordering::SeqCst),
            frames_received: self.frames_received.load(Ordering::SeqCst),
            bytes_sent: self.bytes_sent.load(Ordering::SeqCst),
            bytes_received: self.bytes_received.load(Ordering::SeqCst),
            halo_rows: self.halo_rows.load(Ordering::SeqCst),
            forward_passes: self.forward_passes.load(Ordering::SeqCst),
            rows_gathered: self.rows_gathered.load(Ordering::SeqCst),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::SeqCst),
        }
    }
}

/// One live worker endpoint, joined at shutdown.
enum WorkerHandle {
    Thread(thread::JoinHandle<()>),
    Process(std::process::Child),
}

/// Mutable router state: one connection per shard plus the forward cache
/// flag. Guarded by one mutex — the layer lockstep is inherently a
/// whole-model critical section, and `Gather`s reuse its ordering.
struct RouterState {
    conns: Vec<ShardConn>,
    workers: Vec<WorkerHandle>,
    /// Workers hold post-forward activations; set after the first driven
    /// pass so later requests skip straight to `Gather`.
    forward_done: bool,
    shut_down: bool,
}

/// One served model executed across `k` shard workers; the drop-in sharded
/// counterpart of [`ServedModel`](crate::ServedModel) for classification
/// requests (perf-prediction routing needs the single-process workload and
/// reports `NoEligibleBackend` on sharded models).
pub struct ShardedModel {
    name: String,
    plan: ShardPlan,
    state: Mutex<RouterState>,
    stats: Arc<ShardStatsAtomics>,
}

impl std::fmt::Debug for ShardedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedModel")
            .field("name", &self.name)
            .field("shards", &self.plan.shards())
            .field("num_nodes", &self.plan.num_nodes())
            .field("halo_nodes", &self.plan.total_halo_nodes())
            .finish()
    }
}

impl ShardedModel {
    /// Plans the shards, launches one worker per shard (thread or process
    /// per `options.mode`), connects, and loads each worker's
    /// [`ShardSpec`](gcod_shard::ShardSpec). On return every worker is
    /// loaded and idle; the first classification drives the forward pass.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shard`] on plan rejection (zero shards, more shards
    /// than nodes, feature-dependent propagation), spawn/connect failures,
    /// or protocol violations during the handshake.
    pub fn launch(
        name: impl Into<String>,
        graph: &Graph,
        model: &GnnModel,
        options: &ShardOptions,
    ) -> Result<ShardedModel> {
        let plan = ShardPlan::build(graph, model, &ShardPlanConfig::new(options.shards))?;
        let stats = Arc::new(ShardStatsAtomics::default());
        stats.shards.store(plan.shards() as u64, Ordering::SeqCst);
        stats
            .halo_nodes
            .store(plan.total_halo_nodes() as u64, Ordering::SeqCst);

        let mut conns = Vec::with_capacity(plan.shards());
        let mut workers = Vec::with_capacity(plan.shards());
        for shard in 0..plan.shards() {
            let listener = ShardListener::bind(options.transport)?;
            let addr = listener.local_addr()?;
            let worker = match &options.mode {
                SpawnMode::Thread => {
                    let shard_id = shard as u32;
                    WorkerHandle::Thread(thread::spawn_named(
                        &format!("gcod-shard-worker-{shard}"),
                        move || {
                            // Connect/protocol failures surface router-side
                            // as handshake or read errors.
                            if let Ok(conn) = ShardConn::dial(&addr) {
                                let _ = gcod_shard::run_worker(conn, shard_id);
                            }
                        },
                    ))
                }
                SpawnMode::Process(bin) => {
                    let child = std::process::Command::new(bin)
                        .arg("--addr")
                        .arg(addr.to_string())
                        .arg("--shard")
                        .arg(shard.to_string())
                        .spawn()
                        .map_err(|e| ShardError::Spawn {
                            context: format!("spawning {}: {e}", bin.display()),
                        })?;
                    WorkerHandle::Process(child)
                }
            };
            workers.push(worker);
            let mut conn = listener.accept()?;

            match recv(&mut conn, shard as u32, &stats)? {
                ShardReply::Hello { shard: said } if said == shard as u32 => {}
                other => {
                    return Err(protocol(format!(
                        "shard {shard}: expected Hello{{{shard}}}, got {other:?}"
                    )))
                }
            }
            send(
                &mut conn,
                &ShardRequest::Load(Box::new(plan.spec(shard).clone())),
                &stats,
            )?;
            match recv(&mut conn, shard as u32, &stats)? {
                ShardReply::Loaded { owned, halo }
                    if owned as usize == plan.owned(shard).len()
                        && halo as usize == plan.halo(shard).len() => {}
                other => {
                    return Err(protocol(format!(
                        "shard {shard}: expected Loaded{{owned: {}, halo: {}}}, got {other:?}",
                        plan.owned(shard).len(),
                        plan.halo(shard).len()
                    )))
                }
            }
            conns.push(conn);
        }

        Ok(ShardedModel {
            name: name.into(),
            plan,
            state: Mutex::new(RouterState {
                conns,
                workers,
                forward_done: false,
                shut_down: false,
            }),
            stats,
        })
    }

    /// The serving key (batching compatibility, like `ServedModel::name`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    /// The shard plan driving this router.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Snapshot of this model's transport counters.
    pub fn stats(&self) -> ShardTransportStats {
        self.stats.snapshot()
    }

    pub(crate) fn stats_arc(&self) -> Arc<ShardStatsAtomics> {
        Arc::clone(&self.stats)
    }

    /// Logit rows for `nodes` (request order, duplicates allowed),
    /// bit-identical to `GnnModel::forward_rows` on the unsharded graph.
    ///
    /// The first call drives the full layer lockstep across all shards and
    /// caches the result worker-side; later calls are pure `Gather`
    /// round-trips to the owning shards.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shard`] for out-of-range nodes, worker failures, or
    /// wire errors (a failed router is not automatically restarted).
    pub fn forward_rows(&self, nodes: &[usize]) -> Result<Tensor> {
        let depth = self.stats.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.stats
            .peak_queue_depth
            .fetch_max(depth, Ordering::SeqCst);
        let result = self.forward_rows_inner(nodes);
        self.stats.queue_depth.fetch_sub(1, Ordering::SeqCst);
        result
    }

    fn forward_rows_inner(&self, nodes: &[usize]) -> Result<Tensor> {
        let mut state = self.state.lock_unpoisoned();
        if state.shut_down {
            return Err(protocol(format!(
                "sharded model `{}` is shut down",
                self.name
            )));
        }
        if !state.forward_done {
            self.run_full_forward(&mut state)?;
            state.forward_done = true;
            self.stats.forward_passes.fetch_add(1, Ordering::SeqCst);
        }

        // Group the request by owning shard, remembering where each row of
        // the per-shard answer lands in the caller's order.
        let k = self.plan.shards();
        let mut shard_rows: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut placement = Vec::with_capacity(nodes.len());
        for &node in nodes {
            let (shard, rank) = self.plan.locate(node)?;
            placement.push((shard, shard_rows[shard].len()));
            shard_rows[shard].push(rank as u32);
        }
        for (shard, rows) in shard_rows.iter().enumerate() {
            if !rows.is_empty() {
                send(
                    &mut state.conns[shard],
                    &ShardRequest::Gather { rows: rows.clone() },
                    &self.stats,
                )?;
            }
        }
        let mut gathered: Vec<Option<Tensor>> = (0..k).map(|_| None).collect();
        for (shard, rows) in shard_rows.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            match recv(&mut state.conns[shard], shard as u32, &self.stats)? {
                ShardReply::Rows(rows) => gathered[shard] = Some(rows),
                other => {
                    return Err(protocol(format!(
                        "shard {shard}: expected Rows, got {other:?}"
                    )))
                }
            }
        }

        let mut out = Tensor::zeros(nodes.len(), self.plan.output_dim());
        for (row, &(shard, offset)) in placement.iter().enumerate() {
            let piece = gathered[shard]
                .as_ref()
                .ok_or_else(|| protocol(format!("shard {shard}: missing Gather answer")))?;
            if piece.cols() != self.plan.output_dim() || offset >= piece.rows() {
                return Err(protocol(format!(
                    "shard {shard}: Gather answer shape {:?} does not cover row {offset}",
                    piece.shape()
                )));
            }
            out.row_mut(row).copy_from_slice(piece.row(offset));
        }
        self.stats
            .rows_gathered
            .fetch_add(nodes.len() as u64, Ordering::SeqCst);
        Ok(out)
    }

    /// Drives the layer lockstep: broadcast `RunLayer`, collect exports,
    /// reassemble per-shard halo tensors via the plan's halo-source map,
    /// broadcast `Advance`, repeat.
    fn run_full_forward(&self, state: &mut RouterState) -> Result<()> {
        let k = self.plan.shards();
        let num_layers = self.plan.num_layers();
        for layer in 0..num_layers {
            for conn in state.conns.iter_mut() {
                send(
                    conn,
                    &ShardRequest::RunLayer {
                        layer: layer as u32,
                    },
                    &self.stats,
                )?;
            }
            let mut exports = Vec::with_capacity(k);
            for (shard, conn) in state.conns.iter_mut().enumerate() {
                match recv(conn, shard as u32, &self.stats)? {
                    ShardReply::LayerDone { exports: e } => exports.push(e),
                    other => {
                        return Err(protocol(format!(
                            "shard {shard}: expected LayerDone, got {other:?}"
                        )))
                    }
                }
            }
            if layer + 1 == num_layers {
                break;
            }
            // Width of this layer's activations (all shards share the
            // model, so shard 0's layer stack is authoritative).
            let width = self.plan.spec(0).layers[layer].bias.cols();
            let mut relayed = 0u64;
            for shard in 0..k {
                let sources = self.plan.halo_sources(shard);
                let mut data = Vec::with_capacity(sources.len() * width);
                for &(owner, idx) in sources {
                    let export = &exports[owner as usize];
                    if idx as usize >= export.rows() || export.cols() != width {
                        return Err(protocol(format!(
                            "shard {owner}: export {idx} out of range of {:?}",
                            export.shape()
                        )));
                    }
                    data.extend_from_slice(export.row(idx as usize));
                }
                relayed += sources.len() as u64;
                let halo = Tensor::from_vec(sources.len(), width, data).map_err(ShardError::Nn)?;
                send(
                    &mut state.conns[shard],
                    &ShardRequest::Advance { halo },
                    &self.stats,
                )?;
            }
            for (shard, conn) in state.conns.iter_mut().enumerate() {
                match recv(conn, shard as u32, &self.stats)? {
                    ShardReply::Advanced => {}
                    other => {
                        return Err(protocol(format!(
                            "shard {shard}: expected Advanced, got {other:?}"
                        )))
                    }
                }
            }
            self.stats.halo_rows.fetch_add(relayed, Ordering::SeqCst);
        }
        Ok(())
    }

    /// Gracefully stops every worker: `Shutdown`/`Bye` over the wire, then
    /// joins threads / waits on child processes. Idempotent; also run (best
    /// effort) on drop.
    ///
    /// # Errors
    ///
    /// The first wire or protocol error met while saying goodbye — workers
    /// are still joined in that case.
    pub fn shutdown(&self) -> Result<()> {
        let mut state = self.state.lock_unpoisoned();
        if state.shut_down {
            return Ok(());
        }
        state.shut_down = true;
        let mut first_err: Option<ServeError> = None;
        for (shard, conn) in state.conns.iter_mut().enumerate() {
            let result =
                send(conn, &ShardRequest::Shutdown, &self.stats).and_then(|()| {
                    match recv(conn, shard as u32, &self.stats)? {
                        ShardReply::Bye => Ok(()),
                        other => Err(protocol(format!(
                            "shard {shard}: expected Bye, got {other:?}"
                        ))),
                    }
                });
            if let (Err(e), None) = (result, &first_err) {
                first_err = Some(e);
            }
        }
        state.conns.clear();
        for worker in state.workers.drain(..) {
            match worker {
                WorkerHandle::Thread(handle) => {
                    let _ = handle.join();
                }
                WorkerHandle::Process(mut child) => {
                    let _ = child.wait();
                }
            }
        }
        first_err.map_or(Ok(()), Err)
    }
}

impl Drop for ShardedModel {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

fn protocol(context: String) -> ServeError {
    ServeError::Shard(ShardError::Protocol { context })
}

/// Writes one frame, maintaining the transport counters.
fn send(conn: &mut ShardConn, msg: &ShardRequest, stats: &ShardStatsAtomics) -> Result<()> {
    let bytes = write_frame(conn, msg).map_err(ShardError::Wire)?;
    stats.frames_sent.fetch_add(1, Ordering::SeqCst);
    stats.bytes_sent.fetch_add(bytes as u64, Ordering::SeqCst);
    Ok(())
}

/// Reads one frame, maintaining the transport counters; a worker `Err`
/// reply is promoted to [`ShardError::Worker`].
fn recv(conn: &mut ShardConn, shard: u32, stats: &ShardStatsAtomics) -> Result<ShardReply> {
    let (reply, bytes): (ShardReply, usize) = read_frame(conn).map_err(ShardError::Wire)?;
    stats.frames_received.fetch_add(1, Ordering::SeqCst);
    stats
        .bytes_received
        .fetch_add(bytes as u64, Ordering::SeqCst);
    match reply {
        ShardReply::Err { message } => {
            Err(ServeError::Shard(ShardError::Worker { shard, message }))
        }
        reply => Ok(reply),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;

    fn graph_and_model() -> (Graph, GnnModel) {
        let graph = GraphGenerator::new(17)
            .generate(&DatasetProfile::custom("shardtest", 120, 420, 10, 4))
            .expect("generate");
        let model = GnnModel::new(ModelConfig::gcn(&graph), 3).expect("model");
        (graph, model)
    }

    #[test]
    fn sharded_forward_matches_single_process_bitwise() {
        let (graph, model) = graph_and_model();
        let nodes: Vec<usize> = vec![0, 7, 3, 119, 7, 64];
        let expected = model.forward_rows(&graph, &nodes).expect("oracle");
        for k in [1usize, 2, 3] {
            let sharded =
                ShardedModel::launch("m", &graph, &model, &ShardOptions::new(k)).expect("launch");
            let got = sharded.forward_rows(&nodes).expect("forward");
            assert_eq!(got.data(), expected.data(), "k={k} diverged");
            assert_eq!(got.shape(), expected.shape());
            sharded.shutdown().expect("shutdown");
        }
    }

    #[test]
    fn stats_count_frames_bytes_and_halo_rows() {
        let (graph, model) = graph_and_model();
        let sharded =
            ShardedModel::launch("m", &graph, &model, &ShardOptions::new(2)).expect("launch");
        let after_launch = sharded.stats();
        assert_eq!(after_launch.shards, 2);
        // Handshake: Hello + Load/Loaded per shard.
        assert_eq!(after_launch.frames_sent, 2);
        assert_eq!(after_launch.frames_received, 4);
        assert!(after_launch.bytes_sent > 0 && after_launch.bytes_received > 0);
        assert_eq!(after_launch.forward_passes, 0);

        sharded.forward_rows(&[0, 5]).expect("forward");
        let after = sharded.stats();
        assert_eq!(after.forward_passes, 1);
        assert_eq!(after.rows_gathered, 2);
        assert!(after.peak_queue_depth >= 1);
        assert_eq!(
            after.halo_rows,
            after_launch.halo_nodes * (sharded.plan().num_layers() as u64 - 1),
            "every halo slot is refreshed between consecutive layers"
        );

        // Second call hits the worker-side cache: no RunLayer/Advance, only
        // one Gather round-trip to the owning shard.
        let frames_before = after.frames_sent;
        sharded.forward_rows(&[1]).expect("forward");
        assert_eq!(sharded.stats().forward_passes, 1);
        assert_eq!(sharded.stats().frames_sent, frames_before + 1);
        sharded.shutdown().expect("shutdown");
    }

    #[test]
    fn shutdown_is_idempotent_and_blocks_later_requests() {
        let (graph, model) = graph_and_model();
        let sharded =
            ShardedModel::launch("m", &graph, &model, &ShardOptions::new(2)).expect("launch");
        sharded.shutdown().expect("first");
        sharded.shutdown().expect("second");
        assert!(matches!(
            sharded.forward_rows(&[0]),
            Err(ServeError::Shard(ShardError::Protocol { .. }))
        ));
    }

    #[test]
    fn out_of_range_nodes_are_typed_errors() {
        let (graph, model) = graph_and_model();
        let sharded =
            ShardedModel::launch("m", &graph, &model, &ShardOptions::new(2)).expect("launch");
        assert!(matches!(
            sharded.forward_rows(&[10_000]),
            Err(ServeError::Shard(_))
        ));
        // The router survives the bad request.
        assert_eq!(sharded.forward_rows(&[0]).expect("forward").rows(), 1);
        sharded.shutdown().expect("shutdown");
    }

    #[test]
    fn launch_rejects_more_shards_than_nodes() {
        let (graph, model) = graph_and_model();
        assert!(matches!(
            ShardedModel::launch("m", &graph, &model, &ShardOptions::new(10_000)),
            Err(ServeError::Shard(ShardError::InvalidConfig { .. }))
        ));
    }
}
