//! The shard router: serve one model from `k` worker processes (or
//! threads) over the `gcod-shard` wire protocol, supervised for fault
//! tolerance.
//!
//! ```text
//!                    ┌─ worker 0 (owns partition 0 + halo) ─┐
//! ShardedModel ──UDS─┼─ worker 1 (owns partition 1 + halo) ─┤ halo rows
//!  (router +         └─ worker k-1 ...                      ┘ relayed by
//!   supervisor)                                               the router
//! ```
//!
//! The router drives the layer lockstep: it sends `RunLayer` to each
//! shard, collects the shard's exported boundary activations, reassembles
//! per-shard halo tensors using the plan's halo-source map, and ships them
//! back with `Advance` before the next layer. After the final layer,
//! `forward_rows` answers classification requests with `Gather`
//! round-trips that fetch only the requested rows from the owning shards.
//!
//! # Fault tolerance
//!
//! Every RPC runs under a supervisor ([`SupervisorPolicy`]) that
//! classifies failures and picks the cheapest sound recovery:
//!
//! | observed failure | classification | recovery |
//! |---|---|---|
//! | CRC/decode reject (either direction) | `Reject` | retry the idempotent RPC with capped exponential backoff |
//! | socket deadline expired | `Timeout` | `try_wait` + `Ping` probe; clean `Pong` ⇒ stream in sync ⇒ retry |
//! | EOF / transport error / failed probe | `Disconnect` | respawn the worker, replay its state |
//! | protocol violation, model error | `Fatal` | propagate — not a fault-tolerance situation |
//!
//! Retries are sound because every shard RPC is idempotent (`RunLayer`
//! recomputes from the worker's held activations, `Advance` overwrites the
//! halo, `Gather`/`Ping` are pure) and the length-prefixed framing means a
//! rejected frame never desynchronises the byte stream. A respawned worker
//! is replayed to the exact state of the fabric — from the router's cached
//! per-layer exports once a full pass has completed, or by restarting the
//! (deterministic) pass from layer 0 — so recovery is bit-identical to an
//! unfaulted run. When a shard exhausts its respawn budget the model
//! *degrades*: the remaining workers are reaped and requests are answered
//! from the retained single-process model, bit-identical and flagged
//! [`ShardHealth::Degraded`] in [`ShardTransportStats`]. In-flight
//! requests always resolve — with rows, a typed error, or a fallback
//! answer — never by hanging.
//!
//! Because the plan slices the *full-graph* propagation matrix and keeps
//! local orderings sorted by global id, the logits reassembled here are
//! bit-identical to the single-process `GnnModel::forward` path — pinned
//! by `tests/shard_differential.rs` and the chaos suites.

use crate::error::{RejectReason, Result, ServeError};
use gcod_graph::Graph;
use gcod_nn::models::GnnModel;
use gcod_nn::Tensor;
use gcod_runtime::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use gcod_runtime::sync::{thread, Mutex};
use gcod_runtime::{RecoveryGate, Waker};
use gcod_shard::{
    read_frame, write_frame, ChaosConn, FaultEntry, FaultPlan, ShardError, ShardListener,
    ShardPlan, ShardPlanConfig, ShardReply, ShardRequest, TransportKind, WireError,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// How the router obtains its worker endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnMode {
    /// In-process worker threads (each still speaks the full wire protocol
    /// over a real socket). Cheap, hermetic — the default, and what the
    /// serving benches use.
    Thread,
    /// One OS process per shard: the binary at this path is spawned with
    /// `--addr <addr> --shard <id>` and must delegate to
    /// [`gcod_shard::worker_main`] (the workspace ships
    /// `src/bin/shard_worker.rs`).
    Process(PathBuf),
}

/// Parses a `GCOD_SHARD_TIMEOUT_MS`-style override; `None`, junk and zero
/// fall back to the 5-second default.
pub(crate) fn shard_timeout_ms(value: Option<&str>) -> u64 {
    value
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(5_000)
}

/// Recovery policy of the shard supervisor: how hard to try before a
/// worker is declared dead, and how many deaths to absorb before the model
/// degrades to local execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// In-place retries of one RPC (checksum rejects, probed timeouts)
    /// before escalating to a respawn.
    pub max_retries: u32,
    /// First retry backoff; doubles per retry (capped) — checksum rejects
    /// under real interference tend to cluster.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Worker respawns absorbed per shard (launch retries included) before
    /// the model degrades to the local fallback path.
    pub respawn_budget: u32,
    /// Socket read/write deadline on every shard connection. Defaults to
    /// the `GCOD_SHARD_TIMEOUT_MS` environment variable, or 5000.
    pub rpc_timeout_ms: u64,
    /// Read deadline of the `Ping` liveness probe sent after an RPC
    /// timeout.
    pub heartbeat_timeout_ms: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 64,
            respawn_budget: 3,
            rpc_timeout_ms: shard_timeout_ms(
                std::env::var("GCOD_SHARD_TIMEOUT_MS").ok().as_deref(),
            ),
            heartbeat_timeout_ms: 1_000,
        }
    }
}

/// Launch options for a [`ShardedModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOptions {
    /// Number of shards (`k`); each owns one graph partition.
    pub shards: usize,
    /// Socket flavour carrying the wire protocol.
    pub transport: TransportKind,
    /// Worker threads or worker processes.
    pub mode: SpawnMode,
    /// Supervisor recovery policy (retries, deadlines, respawn budget).
    pub policy: SupervisorPolicy,
    /// Deterministic fault script, for chaos tests. Empty (the default)
    /// means a pass-through transport.
    pub faults: FaultPlan,
}

impl ShardOptions {
    /// `shards` thread-mode workers over the default transport (UDS where
    /// available, TCP loopback otherwise).
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            transport: TransportKind::default(),
            mode: SpawnMode::Thread,
            policy: SupervisorPolicy::default(),
            faults: FaultPlan::new(),
        }
    }

    /// Selects the socket flavour.
    #[must_use]
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Spawns each shard as an OS process running `worker_bin`.
    #[must_use]
    pub fn with_worker_bin(mut self, worker_bin: impl Into<PathBuf>) -> Self {
        self.mode = SpawnMode::Process(worker_bin.into());
        self
    }

    /// Overrides the supervisor recovery policy.
    #[must_use]
    pub fn with_policy(mut self, policy: SupervisorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a deterministic fault script on the launch connections.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Health of the sharded fabric behind a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardHealth {
    /// All shards serving over the wire.
    #[default]
    Healthy,
    /// A shard exhausted its respawn budget: the fabric was torn down and
    /// requests are answered by the retained single-process model
    /// (bit-identical, but without the sharded memory ceiling).
    Degraded,
}

/// A point-in-time snapshot of shard-transport counters, aggregated over
/// every sharded model a server owns (all zeros when none are sharded).
/// Surfaced through [`ServerStats`](crate::ServerStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardTransportStats {
    /// Worker endpoints across all sharded models.
    pub shards: u64,
    /// Halo (replicated boundary) node slots across all shards — the
    /// memory cost of the BNS-style decomposition.
    pub halo_nodes: u64,
    /// Protocol frames written by routers.
    pub frames_sent: u64,
    /// Protocol frames read by routers.
    pub frames_received: u64,
    /// Bytes written by routers (length prefix and checksum included).
    pub bytes_sent: u64,
    /// Bytes read by routers.
    pub bytes_received: u64,
    /// Halo activation rows relayed between shards across all layers.
    pub halo_rows: u64,
    /// Full layer-lockstep forward passes driven (cached afterwards —
    /// stays at 1 per sharded model under a fixed graph).
    pub forward_passes: u64,
    /// Logit rows answered from shard `Gather` round-trips.
    pub rows_gathered: u64,
    /// Peak number of concurrent `forward_rows` calls queued on one
    /// router (the per-shard request queue depth).
    pub peak_queue_depth: u64,
    /// RPCs reissued by the supervisor (after a reject or probed timeout).
    pub retries: u64,
    /// Workers replaced (launch retries included).
    pub respawns: u64,
    /// Requests answered by the degraded local-fallback path.
    pub fallbacks: u64,
    /// Frames rejected by a CRC/decode check on either side of a shard
    /// connection.
    pub checksum_rejects: u64,
    /// Liveness probes that went unanswered (dead process or no `Pong`).
    pub heartbeat_misses: u64,
    /// Worst health across the aggregated models.
    pub health: ShardHealth,
}

impl ShardTransportStats {
    /// Field-wise sum (peaks take the max, health takes the worst), for
    /// aggregating across models.
    pub(crate) fn merge(&mut self, other: &ShardTransportStats) {
        self.shards += other.shards;
        self.halo_nodes += other.halo_nodes;
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.halo_rows += other.halo_rows;
        self.forward_passes += other.forward_passes;
        self.rows_gathered += other.rows_gathered;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.retries += other.retries;
        self.respawns += other.respawns;
        self.fallbacks += other.fallbacks;
        self.checksum_rejects += other.checksum_rejects;
        self.heartbeat_misses += other.heartbeat_misses;
        if other.health == ShardHealth::Degraded {
            self.health = ShardHealth::Degraded;
        }
    }
}

/// Shared atomics behind [`ShardTransportStats`]; the server's dispatcher
/// holds a clone of the `Arc` so `Handle::stats` sees live counters.
#[derive(Debug, Default)]
pub(crate) struct ShardStatsAtomics {
    shards: AtomicU64,
    halo_nodes: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    halo_rows: AtomicU64,
    forward_passes: AtomicU64,
    rows_gathered: AtomicU64,
    queue_depth: AtomicU64,
    peak_queue_depth: AtomicU64,
    retries: AtomicU64,
    respawns: AtomicU64,
    fallbacks: AtomicU64,
    checksum_rejects: AtomicU64,
    heartbeat_misses: AtomicU64,
    degraded: AtomicBool,
}

impl ShardStatsAtomics {
    pub(crate) fn snapshot(&self) -> ShardTransportStats {
        ShardTransportStats {
            shards: self.shards.load(Ordering::SeqCst),
            halo_nodes: self.halo_nodes.load(Ordering::SeqCst),
            frames_sent: self.frames_sent.load(Ordering::SeqCst),
            frames_received: self.frames_received.load(Ordering::SeqCst),
            bytes_sent: self.bytes_sent.load(Ordering::SeqCst),
            bytes_received: self.bytes_received.load(Ordering::SeqCst),
            halo_rows: self.halo_rows.load(Ordering::SeqCst),
            forward_passes: self.forward_passes.load(Ordering::SeqCst),
            rows_gathered: self.rows_gathered.load(Ordering::SeqCst),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::SeqCst),
            retries: self.retries.load(Ordering::SeqCst),
            respawns: self.respawns.load(Ordering::SeqCst),
            fallbacks: self.fallbacks.load(Ordering::SeqCst),
            checksum_rejects: self.checksum_rejects.load(Ordering::SeqCst),
            heartbeat_misses: self.heartbeat_misses.load(Ordering::SeqCst),
            health: if self.degraded.load(Ordering::SeqCst) {
                ShardHealth::Degraded
            } else {
                ShardHealth::Healthy
            },
        }
    }
}

/// One live worker endpoint, joined at shutdown. `Gone` marks a handle
/// already taken for reaping (respawn replaces it with a fresh one).
enum WorkerHandle {
    Thread(thread::JoinHandle<()>),
    Process(std::process::Child),
    Gone,
}

/// Joins/waits one worker to completion; `true` when it was reaped.
fn reap(worker: WorkerHandle) -> bool {
    match worker {
        WorkerHandle::Thread(handle) => handle.join().is_ok(),
        WorkerHandle::Process(mut child) => child.wait().is_ok(),
        WorkerHandle::Gone => false,
    }
}

/// Severs the shard's connection and force-kills a process worker (the
/// handle stays in place for a later [`reap`]).
fn kill_endpoint(state: &mut RouterState, shard: usize) {
    if let Some(conn) = state.conns.get(shard) {
        conn.shutdown_both();
    }
    if let Some(WorkerHandle::Process(child)) = state.workers.get_mut(shard) {
        let _ = child.kill();
    }
}

/// Mutable router state: one connection per shard plus the forward cache.
/// Guarded by one mutex — the layer lockstep is inherently a whole-model
/// critical section, and `Gather`s reuse its ordering.
struct RouterState {
    conns: Vec<ChaosConn>,
    workers: Vec<WorkerHandle>,
    /// Per-layer exported boundary activations of the last full pass,
    /// `exports_cache[layer][shard]` — the replay source that restores a
    /// respawned worker bit-identically without touching its peers.
    exports_cache: Vec<Vec<Tensor>>,
    /// Supervised RPCs issued per shard (drives scripted `KillWorker`
    /// faults).
    rpc_seq: Vec<u64>,
    /// Pending scripted kills, as `(shard, nth RPC)` — one-shot.
    kills: Vec<(u32, u64)>,
    /// Respawn budget consumed per shard.
    respawns_used: Vec<u32>,
    /// Workers hold post-forward activations; set after the first driven
    /// pass so later requests skip straight to `Gather`.
    forward_done: bool,
    shut_down: bool,
    /// The fabric was torn down; requests run on the local fallback.
    degraded: bool,
    /// Full-graph logits of the fallback model, computed on first
    /// degraded request and cached (the graph is fixed).
    fallback_logits: Option<Tensor>,
}

/// Per-shard outcome of [`ShardedModel::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardShutdownOutcome {
    /// The shard this outcome describes.
    pub shard: usize,
    /// `None` for a clean `Shutdown`/`Bye` goodbye; otherwise what went
    /// wrong on the wire (the worker is reaped regardless).
    pub error: Option<String>,
    /// Whether the worker thread/process was joined/waited to completion.
    pub reaped: bool,
}

/// Outcome of [`ShardedModel::shutdown`]: one entry per shard that still
/// had a live connection (none when the model had already degraded —
/// degradation reaps the fabric eagerly).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShutdownReport {
    /// Per-shard goodbye/reap outcomes.
    pub outcomes: Vec<ShardShutdownOutcome>,
    /// Whether the model was serving degraded at shutdown time.
    pub degraded: bool,
}

impl ShutdownReport {
    /// `true` when every shard said goodbye cleanly and was reaped.
    pub fn is_clean(&self) -> bool {
        self.outcomes.iter().all(|o| o.error.is_none() && o.reaped)
    }

    /// The first wire/protocol error met while saying goodbye, if any.
    pub fn first_error(&self) -> Option<&str> {
        self.outcomes.iter().find_map(|o| o.error.as_deref())
    }
}

/// Supervisor failure taxonomy (see the module docs for the recovery
/// matched to each class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailureClass {
    /// CRC/decode reject on an intact, still-framed stream.
    Reject,
    /// A socket deadline expired; the peer may be alive.
    Timeout,
    /// EOF or a broken transport.
    Disconnect,
    /// Not a fault-tolerance situation.
    Fatal,
}

fn classify(err: &ServeError) -> FailureClass {
    match err {
        ServeError::Shard(ShardError::Wire(w)) => match w {
            WireError::TimedOut { .. } => FailureClass::Timeout,
            WireError::Closed | WireError::Io { .. } => FailureClass::Disconnect,
            // Decode-level rejects (checksum, version, tag, truncation…):
            // the frame was consumed whole, the stream is still framed.
            _ => FailureClass::Reject,
        },
        // The worker rejected one of *our* frames on its CRC/decode check
        // (see `gcod_shard::worker::run`) and stayed in its loop.
        ServeError::Shard(ShardError::Worker { message, .. })
            if message.starts_with("bad frame:") =>
        {
            FailureClass::Reject
        }
        _ => FailureClass::Fatal,
    }
}

/// Why one supervised RPC gave up on the current connection.
enum RpcFail {
    /// The worker/connection must be replaced before retrying.
    Respawn,
    /// Propagate to the caller — retrying cannot help.
    Fatal(ServeError),
}

/// Why the supervisor gave up on the sharded fabric for this request.
enum Outage {
    /// Respawn budget exhausted — serve from the local fallback.
    Degrade,
    /// Propagate to the caller.
    Fatal(ServeError),
}

/// Capped exponential backoff between in-place RPC retries.
fn backoff(policy: &SupervisorPolicy, attempt: u32) {
    let exp = attempt.saturating_sub(1).min(16);
    let ms = policy
        .backoff_base_ms
        .saturating_mul(1u64 << exp)
        .min(policy.backoff_cap_ms);
    if ms > 0 {
        // gcod-check: allow(thread-sleep) — retry backoff: there is no peer to park on a condvar for; the point is to let transient interference clear.
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// One served model executed across `k` shard workers; the drop-in sharded
/// counterpart of [`ServedModel`](crate::ServedModel) for classification
/// requests (perf-prediction routing needs the single-process workload and
/// reports `NoEligibleBackend` on sharded models).
pub struct ShardedModel {
    name: String,
    plan: ShardPlan,
    options: ShardOptions,
    /// Retained single-process copies backing the degraded path. Costs one
    /// extra copy of graph + weights on the router — the price of a
    /// fallback that needs no worker.
    fallback_graph: Graph,
    fallback_model: GnnModel,
    /// Serialises respawn cycles and lets shutdown block new ones — the
    /// queue/latch/respawn state machine model-checked in
    /// `tests/model_supervisor.rs`.
    gate: RecoveryGate,
    state: Mutex<RouterState>,
    stats: Arc<ShardStatsAtomics>,
    /// Pinged after every completed recovery transition (respawn or
    /// degrade) so an event-driven host — the serving reactor — can observe
    /// worker death handling without polling. `None` outside a server.
    recovery_waker: Mutex<Option<Waker>>,
}

impl std::fmt::Debug for ShardedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedModel")
            .field("name", &self.name)
            .field("shards", &self.plan.shards())
            .field("num_nodes", &self.plan.num_nodes())
            .field("halo_nodes", &self.plan.total_halo_nodes())
            .finish()
    }
}

impl ShardedModel {
    /// Plans the shards, launches one worker per shard (thread or process
    /// per `options.mode`), connects, and loads each worker's
    /// [`ShardSpec`](gcod_shard::ShardSpec). On return every worker is
    /// loaded and idle; the first classification drives the forward pass.
    ///
    /// Launch failures of the spawn/handshake kind are retried against the
    /// per-shard respawn budget; exhausting it yields a *degraded* model
    /// (local fallback), not an error.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shard`] on plan rejection (zero shards, more shards
    /// than nodes, feature-dependent propagation) or protocol violations
    /// during the handshake.
    pub fn launch(
        name: impl Into<String>,
        graph: &Graph,
        model: &GnnModel,
        options: &ShardOptions,
    ) -> Result<ShardedModel> {
        let plan = ShardPlan::build(graph, model, &ShardPlanConfig::new(options.shards))?;
        let stats = Arc::new(ShardStatsAtomics::default());
        stats.shards.store(plan.shards() as u64, Ordering::SeqCst);
        stats
            .halo_nodes
            .store(plan.total_halo_nodes() as u64, Ordering::SeqCst);

        let k = plan.shards();
        let mut conns = Vec::with_capacity(k);
        let mut workers = Vec::with_capacity(k);
        let mut respawns_used = vec![0u32; k];
        let mut degraded = false;
        'shards: for (shard, used) in respawns_used.iter_mut().enumerate() {
            // The scripted transport faults ride the first connection
            // attempt only; retries get a clean wire.
            let mut faults = options.faults.transport_entries(shard as u32);
            loop {
                match Self::connect_worker(
                    &plan,
                    options,
                    shard,
                    std::mem::take(&mut faults),
                    &stats,
                ) {
                    Ok((conn, worker)) => {
                        conns.push(conn);
                        workers.push(worker);
                        continue 'shards;
                    }
                    Err(e) if classify(&e) == FailureClass::Fatal => return Err(e),
                    Err(_) => {
                        if *used >= options.policy.respawn_budget {
                            degraded = true;
                            break 'shards;
                        }
                        *used += 1;
                        stats.respawns.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        }
        if degraded {
            stats.degraded.store(true, Ordering::SeqCst);
            for conn in &conns {
                conn.shutdown_both();
            }
            conns.clear();
            for worker in workers.drain(..) {
                reap(worker);
            }
        }

        Ok(ShardedModel {
            name: name.into(),
            plan,
            options: options.clone(),
            fallback_graph: graph.clone(),
            fallback_model: model.clone(),
            gate: RecoveryGate::new(),
            state: Mutex::new(RouterState {
                conns,
                workers,
                exports_cache: Vec::new(),
                rpc_seq: vec![0; k],
                kills: options.faults.kill_entries(),
                respawns_used,
                forward_done: false,
                shut_down: false,
                degraded,
                fallback_logits: None,
            }),
            stats,
            recovery_waker: Mutex::new(None),
        })
    }

    /// Binds a listener, spawns one worker, accepts its connection, arms
    /// the socket deadlines and runs the `Hello`/`Load`/`Loaded`
    /// handshake. On any failure the worker is reaped before the error is
    /// returned — no half-launched endpoints leak.
    fn connect_worker(
        plan: &ShardPlan,
        options: &ShardOptions,
        shard: usize,
        faults: Vec<FaultEntry>,
        stats: &ShardStatsAtomics,
    ) -> Result<(ChaosConn, WorkerHandle)> {
        let listener = ShardListener::bind(options.transport)?;
        let addr = listener.local_addr()?;
        let worker = match &options.mode {
            SpawnMode::Thread => {
                let shard_id = shard as u32;
                WorkerHandle::Thread(thread::spawn_named(
                    &format!("gcod-shard-worker-{shard}"),
                    move || {
                        // Connect/protocol failures surface router-side
                        // as handshake or read errors.
                        if let Ok(conn) = gcod_shard::ShardConn::dial(&addr) {
                            let _ = gcod_shard::run_worker(conn, shard_id);
                        }
                    },
                ))
            }
            SpawnMode::Process(bin) => {
                let child = std::process::Command::new(bin)
                    .arg("--addr")
                    .arg(addr.to_string())
                    .arg("--shard")
                    .arg(shard.to_string())
                    .spawn()
                    .map_err(|e| ShardError::Spawn {
                        context: format!("spawning {}: {e}", bin.display()),
                    })?;
                WorkerHandle::Process(child)
            }
        };
        let mut conn = ChaosConn::with_faults(listener.accept()?, faults);
        let timeout = Duration::from_millis(options.policy.rpc_timeout_ms);
        let handshake = (|| -> Result<()> {
            conn.set_read_timeout(Some(timeout))?;
            conn.set_write_timeout(Some(timeout))?;
            match recv(&mut conn, shard as u32, stats)? {
                ShardReply::Hello { shard: said } if said == shard as u32 => {}
                other => {
                    return Err(protocol(format!(
                        "shard {shard}: expected Hello{{{shard}}}, got {other:?}"
                    )))
                }
            }
            send(
                &mut conn,
                &ShardRequest::Load(Box::new(plan.spec(shard).clone())),
                stats,
            )?;
            match recv(&mut conn, shard as u32, stats)? {
                ShardReply::Loaded { owned, halo }
                    if owned as usize == plan.owned(shard).len()
                        && halo as usize == plan.halo(shard).len() => {}
                other => {
                    return Err(protocol(format!(
                        "shard {shard}: expected Loaded{{owned: {}, halo: {}}}, got {other:?}",
                        plan.owned(shard).len(),
                        plan.halo(shard).len()
                    )))
                }
            }
            Ok(())
        })();
        if let Err(e) = handshake {
            conn.shutdown_both();
            match worker {
                WorkerHandle::Thread(handle) => {
                    let _ = handle.join();
                }
                WorkerHandle::Process(mut child) => {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                WorkerHandle::Gone => {}
            }
            return Err(e);
        }
        Ok((conn, worker))
    }

    /// The serving key (batching compatibility, like `ServedModel::name`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    /// The shard plan driving this router.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Snapshot of this model's transport counters.
    pub fn stats(&self) -> ShardTransportStats {
        self.stats.snapshot()
    }

    /// Whether the model has degraded to the local fallback path.
    pub fn is_degraded(&self) -> bool {
        self.state.lock_unpoisoned().degraded
    }

    pub(crate) fn stats_arc(&self) -> Arc<ShardStatsAtomics> {
        Arc::clone(&self.stats)
    }

    /// Registers the reactor waker the supervisor pings after every
    /// recovery transition (worker respawned, or degraded to the local
    /// fallback). Installed by `Server::spawn`.
    pub(crate) fn set_recovery_waker(&self, waker: Waker) {
        *self.recovery_waker.lock_unpoisoned() = Some(waker);
    }

    /// Pings the registered recovery waker, if any.
    fn notify_recovery(&self) {
        if let Some(waker) = self.recovery_waker.lock_unpoisoned().as_ref() {
            waker.wake();
        }
    }

    /// Kills one worker out from under the router — severs its connection
    /// and SIGKILLs a process worker. A test/bench hook: the next RPC to
    /// that shard exercises the full detect → respawn → replay path.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shard`] when the shard index is out of range or the
    /// fabric is already gone (shut down or degraded).
    pub fn kill_worker(&self, shard: usize) -> Result<()> {
        let mut state = self.state.lock_unpoisoned();
        if state.shut_down || state.degraded || shard >= state.conns.len() {
            return Err(protocol(format!(
                "kill_worker({shard}): no live worker (shards: {}, degraded: {})",
                state.conns.len(),
                state.degraded
            )));
        }
        kill_endpoint(&mut state, shard);
        Ok(())
    }

    /// Logit rows for `nodes` (request order, duplicates allowed),
    /// bit-identical to `GnnModel::forward_rows` on the unsharded graph.
    ///
    /// The first call drives the full layer lockstep across all shards and
    /// caches the result worker-side; later calls are pure `Gather`
    /// round-trips to the owning shards. Worker/transport failures are
    /// absorbed by the supervisor (retry → respawn+replay → degrade);
    /// the answer is bit-identical on every recovery path.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shard`] for out-of-range nodes or protocol
    /// violations, [`ServeError::Rejected`] with
    /// [`RejectReason::ShuttingDown`] when a failure races
    /// [`shutdown`](ShardedModel::shutdown).
    pub fn forward_rows(&self, nodes: &[usize]) -> Result<Tensor> {
        let depth = self.stats.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.stats
            .peak_queue_depth
            .fetch_max(depth, Ordering::SeqCst);
        let result = self.forward_rows_inner(nodes);
        self.stats.queue_depth.fetch_sub(1, Ordering::SeqCst);
        result
    }

    fn forward_rows_inner(&self, nodes: &[usize]) -> Result<Tensor> {
        let mut state = self.state.lock_unpoisoned();
        if state.shut_down {
            return Err(protocol(format!(
                "sharded model `{}` is shut down",
                self.name
            )));
        }
        if state.degraded {
            return self.fallback_rows(&mut state, nodes);
        }
        if !state.forward_done {
            match self.run_full_forward(&mut state) {
                Ok(()) => {
                    state.forward_done = true;
                    self.stats.forward_passes.fetch_add(1, Ordering::SeqCst);
                }
                Err(Outage::Degrade) => {
                    self.degrade(&mut state);
                    return self.fallback_rows(&mut state, nodes);
                }
                Err(Outage::Fatal(e)) => return Err(e),
            }
        }

        // Group the request by owning shard, remembering where each row of
        // the per-shard answer lands in the caller's order.
        let k = self.plan.shards();
        let mut shard_rows: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut placement = Vec::with_capacity(nodes.len());
        for &node in nodes {
            let (shard, rank) = self.plan.locate(node)?;
            placement.push((shard, shard_rows[shard].len()));
            shard_rows[shard].push(rank as u32);
        }
        let mut gathered: Vec<Option<Tensor>> = (0..k).map(|_| None).collect();
        for (shard, rows) in shard_rows.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let req = ShardRequest::Gather { rows: rows.clone() };
            let piece = loop {
                match self.rpc(&mut state, shard, &req) {
                    Ok(ShardReply::Rows(rows)) => break rows,
                    Ok(other) => {
                        return Err(protocol(format!(
                            "shard {shard}: expected Rows, got {other:?}"
                        )))
                    }
                    Err(RpcFail::Fatal(e)) => return Err(e),
                    Err(RpcFail::Respawn) => {
                        match self.respawn(&mut state, shard) {
                            Ok(()) => {} // fresh worker, replayed — reissue
                            Err(Outage::Degrade) => {
                                self.degrade(&mut state);
                                return self.fallback_rows(&mut state, nodes);
                            }
                            Err(Outage::Fatal(e)) => return Err(e),
                        }
                    }
                }
            };
            gathered[shard] = Some(piece);
        }

        let mut out = Tensor::zeros(nodes.len(), self.plan.output_dim());
        for (row, &(shard, offset)) in placement.iter().enumerate() {
            let piece = gathered[shard]
                .as_ref()
                .ok_or_else(|| protocol(format!("shard {shard}: missing Gather answer")))?;
            if piece.cols() != self.plan.output_dim() || offset >= piece.rows() {
                return Err(protocol(format!(
                    "shard {shard}: Gather answer shape {:?} does not cover row {offset}",
                    piece.shape()
                )));
            }
            out.row_mut(row).copy_from_slice(piece.row(offset));
        }
        self.stats
            .rows_gathered
            .fetch_add(nodes.len() as u64, Ordering::SeqCst);
        Ok(out)
    }

    /// Answers one request from the retained single-process model. The
    /// full-graph logits are computed once and cached (the graph is
    /// fixed), so degraded serving is a row gather — and `forward_rows` is
    /// defined as exactly that gather, so the answer is bit-identical.
    fn fallback_rows(&self, state: &mut RouterState, nodes: &[usize]) -> Result<Tensor> {
        self.stats.fallbacks.fetch_add(1, Ordering::SeqCst);
        if state.fallback_logits.is_none() {
            state.fallback_logits = Some(self.fallback_model.forward(&self.fallback_graph)?);
        }
        let Some(logits) = state.fallback_logits.as_ref() else {
            return Err(protocol("fallback logits missing after compute".into()));
        };
        let out = logits.gather_rows(nodes)?;
        self.stats
            .rows_gathered
            .fetch_add(nodes.len() as u64, Ordering::SeqCst);
        Ok(out)
    }

    /// Consults the scripted kill list for the RPC about to be issued.
    fn note_scripted_kill(&self, state: &mut RouterState, shard: usize) {
        state.rpc_seq[shard] += 1;
        let seq = state.rpc_seq[shard];
        if let Some(pos) = state
            .kills
            .iter()
            .position(|&(s, n)| s as usize == shard && n == seq)
        {
            state.kills.remove(pos);
            kill_endpoint(state, shard);
        }
    }

    /// One supervised RPC: send, receive, and absorb recoverable failures
    /// in place (reject → backoff + retry, timeout → probe + retry).
    /// Escalates to [`RpcFail::Respawn`] when the connection is beyond
    /// saving, [`RpcFail::Fatal`] when retrying cannot help.
    fn rpc(
        &self,
        state: &mut RouterState,
        shard: usize,
        req: &ShardRequest,
    ) -> std::result::Result<ShardReply, RpcFail> {
        self.note_scripted_kill(state, shard);
        let mut attempts = 0u32;
        loop {
            let outcome = send(&mut state.conns[shard], req, &self.stats)
                .and_then(|()| recv(&mut state.conns[shard], shard as u32, &self.stats));
            let err = match outcome {
                Ok(reply) => return Ok(reply),
                Err(e) => e,
            };
            let class = classify(&err);
            match class {
                FailureClass::Fatal => return Err(RpcFail::Fatal(err)),
                FailureClass::Disconnect => return Err(RpcFail::Respawn),
                FailureClass::Reject | FailureClass::Timeout => {
                    if class == FailureClass::Reject {
                        self.stats.checksum_rejects.fetch_add(1, Ordering::SeqCst);
                    } else if !self.probe_alive(state, shard) {
                        return Err(RpcFail::Respawn);
                    }
                    if attempts >= self.options.policy.max_retries {
                        return Err(RpcFail::Respawn);
                    }
                    attempts += 1;
                    self.stats.retries.fetch_add(1, Ordering::SeqCst);
                    if class == FailureClass::Reject {
                        backoff(&self.options.policy, attempts);
                    }
                }
            }
        }
    }

    /// Liveness check after an RPC timeout: a process that `try_wait`s as
    /// exited is dead; otherwise a `Ping` with a short deadline must come
    /// back as a clean `Pong` — which also proves the byte stream is still
    /// in frame sync, making an RPC retry sound.
    fn probe_alive(&self, state: &mut RouterState, shard: usize) -> bool {
        if let Some(WorkerHandle::Process(child)) = state.workers.get_mut(shard) {
            if !matches!(child.try_wait(), Ok(None)) {
                self.stats.heartbeat_misses.fetch_add(1, Ordering::SeqCst);
                return false;
            }
        }
        let conn = &mut state.conns[shard];
        let _ = conn.set_read_timeout(Some(Duration::from_millis(
            self.options.policy.heartbeat_timeout_ms,
        )));
        let alive = send(conn, &ShardRequest::Ping, &self.stats)
            .and_then(|()| recv(conn, shard as u32, &self.stats))
            .map(|reply| matches!(reply, ShardReply::Pong))
            .unwrap_or(false);
        let _ = conn.set_read_timeout(Some(Duration::from_millis(
            self.options.policy.rpc_timeout_ms,
        )));
        if !alive {
            self.stats.heartbeat_misses.fetch_add(1, Ordering::SeqCst);
        }
        alive
    }

    /// Replaces one dead worker: reaps the corpse, spawns + loads a fresh
    /// one (burning respawn budget per attempt), and replays it to the
    /// fabric's post-forward state from the cached exports. Runs under the
    /// [`RecoveryGate`] so shutdown can fence new recovery cycles.
    fn respawn(&self, state: &mut RouterState, shard: usize) -> std::result::Result<(), Outage> {
        let Some(token) = self.gate.begin_recovery() else {
            return Err(if self.gate.is_closed() {
                Outage::Fatal(ServeError::Rejected(RejectReason::ShuttingDown))
            } else {
                Outage::Fatal(protocol(format!(
                    "shard {shard}: recovery gate busy outside the router lock"
                )))
            });
        };
        let result = self.respawn_locked(state, shard);
        self.gate.finish(token);
        // Whatever the outcome — fresh worker, degrade, or fatal — a
        // recovery transition completed; let the reactor observe it.
        self.notify_recovery();
        result
    }

    fn respawn_locked(
        &self,
        state: &mut RouterState,
        shard: usize,
    ) -> std::result::Result<(), Outage> {
        loop {
            if state.respawns_used[shard] >= self.options.policy.respawn_budget {
                return Err(Outage::Degrade);
            }
            state.respawns_used[shard] += 1;
            self.stats.respawns.fetch_add(1, Ordering::SeqCst);

            // Reap the corpse: sever, kill (process mode), join/wait.
            state.conns[shard].shutdown_both();
            match std::mem::replace(&mut state.workers[shard], WorkerHandle::Gone) {
                WorkerHandle::Thread(handle) => {
                    let _ = handle.join();
                }
                WorkerHandle::Process(mut child) => {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                WorkerHandle::Gone => {}
            }

            match Self::connect_worker(&self.plan, &self.options, shard, Vec::new(), &self.stats) {
                Ok((conn, worker)) => {
                    state.conns[shard] = conn;
                    state.workers[shard] = worker;
                }
                Err(e) => {
                    if classify(&e) == FailureClass::Fatal {
                        return Err(Outage::Fatal(e));
                    }
                    continue; // burn more budget on another attempt
                }
            }

            if state.forward_done {
                match self.replay_shard(state, shard) {
                    Ok(()) => return Ok(()),
                    Err(RpcFail::Fatal(e)) => return Err(Outage::Fatal(e)),
                    Err(RpcFail::Respawn) => continue,
                }
            }
            return Ok(());
        }
    }

    /// Re-runs the layer lockstep on `shard` alone, feeding the halo rows
    /// every other shard contributed to the *original* pass from the
    /// router's export cache — deterministic worker compute on identical
    /// inputs, so the restored state matches the lost one bit for bit.
    fn replay_shard(
        &self,
        state: &mut RouterState,
        shard: usize,
    ) -> std::result::Result<(), RpcFail> {
        let num_layers = self.plan.num_layers();
        for layer in 0..num_layers {
            match self.rpc(
                state,
                shard,
                &ShardRequest::RunLayer {
                    layer: layer as u32,
                },
            )? {
                ShardReply::LayerDone { exports } => {
                    state.exports_cache[layer][shard] = exports;
                }
                other => {
                    return Err(RpcFail::Fatal(protocol(format!(
                        "shard {shard}: expected LayerDone during replay, got {other:?}"
                    ))))
                }
            }
            if layer + 1 == num_layers {
                break;
            }
            let halo = self
                .halo_for(shard, layer, &state.exports_cache[layer])
                .map_err(RpcFail::Fatal)?;
            match self.rpc(state, shard, &ShardRequest::Advance { halo })? {
                ShardReply::Advanced => {}
                other => {
                    return Err(RpcFail::Fatal(protocol(format!(
                        "shard {shard}: expected Advanced during replay, got {other:?}"
                    ))))
                }
            }
        }
        Ok(())
    }

    /// Assembles `shard`'s halo tensor for `layer` from the per-shard
    /// export set, via the plan's halo-source map.
    fn halo_for(&self, shard: usize, layer: usize, exports: &[Tensor]) -> Result<Tensor> {
        // Width of this layer's activations (all shards share the model,
        // so shard 0's layer stack is authoritative).
        let width = self.plan.spec(0).layers[layer].bias.cols();
        let sources = self.plan.halo_sources(shard);
        let mut data = Vec::with_capacity(sources.len() * width);
        for &(owner, idx) in sources {
            let export = &exports[owner as usize];
            if idx as usize >= export.rows() || export.cols() != width {
                return Err(protocol(format!(
                    "shard {owner}: export {idx} out of range of {:?}",
                    export.shape()
                )));
            }
            data.extend_from_slice(export.row(idx as usize));
        }
        self.stats
            .halo_rows
            .fetch_add(sources.len() as u64, Ordering::SeqCst);
        let halo = Tensor::from_vec(sources.len(), width, data).map_err(ShardError::Nn)?;
        Ok(halo)
    }

    /// Drives the layer lockstep: `RunLayer` each shard, reassemble
    /// per-shard halo tensors via the plan's halo-source map, `Advance`,
    /// repeat — caching every export layer so a later respawn can replay a
    /// single shard. A mid-pass respawn restarts the whole (deterministic)
    /// pass from layer 0; `RunLayer{0}` resets every worker's state.
    fn run_full_forward(&self, state: &mut RouterState) -> std::result::Result<(), Outage> {
        let k = self.plan.shards();
        let num_layers = self.plan.num_layers();
        'restart: loop {
            let mut cache: Vec<Vec<Tensor>> = Vec::with_capacity(num_layers);
            for layer in 0..num_layers {
                let mut exports = Vec::with_capacity(k);
                for shard in 0..k {
                    match self.rpc(
                        state,
                        shard,
                        &ShardRequest::RunLayer {
                            layer: layer as u32,
                        },
                    ) {
                        Ok(ShardReply::LayerDone { exports: e }) => exports.push(e),
                        Ok(other) => {
                            return Err(Outage::Fatal(protocol(format!(
                                "shard {shard}: expected LayerDone, got {other:?}"
                            ))))
                        }
                        Err(RpcFail::Fatal(e)) => return Err(Outage::Fatal(e)),
                        Err(RpcFail::Respawn) => {
                            self.respawn(state, shard)?;
                            continue 'restart;
                        }
                    }
                }
                if layer + 1 < num_layers {
                    for shard in 0..k {
                        let halo = self
                            .halo_for(shard, layer, &exports)
                            .map_err(Outage::Fatal)?;
                        match self.rpc(state, shard, &ShardRequest::Advance { halo }) {
                            Ok(ShardReply::Advanced) => {}
                            Ok(other) => {
                                return Err(Outage::Fatal(protocol(format!(
                                    "shard {shard}: expected Advanced, got {other:?}"
                                ))))
                            }
                            Err(RpcFail::Fatal(e)) => return Err(Outage::Fatal(e)),
                            Err(RpcFail::Respawn) => {
                                self.respawn(state, shard)?;
                                continue 'restart;
                            }
                        }
                    }
                }
                cache.push(exports);
            }
            state.exports_cache = cache;
            return Ok(());
        }
    }

    /// Tears the fabric down and flips the model to the local fallback:
    /// sever every connection, reap every worker (never leak a child),
    /// drop the export cache, raise [`ShardHealth::Degraded`].
    fn degrade(&self, state: &mut RouterState) {
        state.degraded = true;
        self.stats.degraded.store(true, Ordering::SeqCst);
        for conn in &state.conns {
            conn.shutdown_both();
        }
        state.conns.clear();
        for worker in state.workers.drain(..) {
            reap(worker);
        }
        state.exports_cache.clear();
    }

    /// Gracefully stops every worker: closes the recovery gate (no new
    /// respawn cycles), says `Shutdown`/`Bye` over the wire, then joins
    /// threads / waits on child processes — **every** worker is reaped,
    /// goodbye failures notwithstanding. Idempotent; also run (best
    /// effort) on drop.
    ///
    /// # Errors
    ///
    /// None today — per-shard goodbye failures are returned in the
    /// [`ShutdownReport`] instead of short-circuiting the teardown.
    pub fn shutdown(&self) -> Result<ShutdownReport> {
        self.gate.close();
        let mut state = self.state.lock_unpoisoned();
        if state.shut_down {
            return Ok(ShutdownReport::default());
        }
        state.shut_down = true;
        let mut outcomes = Vec::with_capacity(state.workers.len());
        let conns = std::mem::take(&mut state.conns);
        for (shard, mut conn) in conns.into_iter().enumerate() {
            let goodbye = send(&mut conn, &ShardRequest::Shutdown, &self.stats).and_then(|()| {
                match recv(&mut conn, shard as u32, &self.stats)? {
                    ShardReply::Bye => Ok(()),
                    other => Err(protocol(format!(
                        "shard {shard}: expected Bye, got {other:?}"
                    ))),
                }
            });
            outcomes.push(ShardShutdownOutcome {
                shard,
                error: goodbye.err().map(|e| e.to_string()),
                reaped: false,
            });
            // A worker that missed the goodbye must still observe EOF.
            conn.shutdown_both();
        }
        for (shard, worker) in state.workers.drain(..).enumerate() {
            let reaped = reap(worker);
            if let Some(outcome) = outcomes.get_mut(shard) {
                outcome.reaped = reaped;
            }
        }
        Ok(ShutdownReport {
            outcomes,
            degraded: state.degraded,
        })
    }
}

impl Drop for ShardedModel {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

fn protocol(context: String) -> ServeError {
    ServeError::Shard(ShardError::Protocol { context })
}

/// Writes one frame, maintaining the transport counters.
fn send(conn: &mut ChaosConn, msg: &ShardRequest, stats: &ShardStatsAtomics) -> Result<()> {
    let bytes = write_frame(conn, msg).map_err(ShardError::Wire)?;
    stats.frames_sent.fetch_add(1, Ordering::SeqCst);
    stats.bytes_sent.fetch_add(bytes as u64, Ordering::SeqCst);
    Ok(())
}

/// Reads one frame, maintaining the transport counters; a worker `Err`
/// reply is promoted to [`ShardError::Worker`].
fn recv(conn: &mut ChaosConn, shard: u32, stats: &ShardStatsAtomics) -> Result<ShardReply> {
    let (reply, bytes): (ShardReply, usize) = read_frame(conn).map_err(ShardError::Wire)?;
    stats.frames_received.fetch_add(1, Ordering::SeqCst);
    stats
        .bytes_received
        .fetch_add(bytes as u64, Ordering::SeqCst);
    match reply {
        ShardReply::Err { message } => {
            Err(ServeError::Shard(ShardError::Worker { shard, message }))
        }
        reply => Ok(reply),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;
    use gcod_shard::FaultAction;

    fn graph_and_model() -> (Graph, GnnModel) {
        let graph = GraphGenerator::new(17)
            .generate(&DatasetProfile::custom("shardtest", 120, 420, 10, 4))
            .expect("generate");
        let model = GnnModel::new(ModelConfig::gcn(&graph), 3).expect("model");
        (graph, model)
    }

    /// Short deadlines so drop-style faults cost milliseconds, not the
    /// 5-second production default.
    fn fast_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            rpc_timeout_ms: 250,
            heartbeat_timeout_ms: 250,
            ..SupervisorPolicy::default()
        }
    }

    #[test]
    fn sharded_forward_matches_single_process_bitwise() {
        let (graph, model) = graph_and_model();
        let nodes: Vec<usize> = vec![0, 7, 3, 119, 7, 64];
        let expected = model.forward_rows(&graph, &nodes).expect("oracle");
        for k in [1usize, 2, 3] {
            let sharded =
                ShardedModel::launch("m", &graph, &model, &ShardOptions::new(k)).expect("launch");
            let got = sharded.forward_rows(&nodes).expect("forward");
            assert_eq!(got.data(), expected.data(), "k={k} diverged");
            assert_eq!(got.shape(), expected.shape());
            sharded.shutdown().expect("shutdown");
        }
    }

    #[test]
    fn stats_count_frames_bytes_and_halo_rows() {
        let (graph, model) = graph_and_model();
        let sharded =
            ShardedModel::launch("m", &graph, &model, &ShardOptions::new(2)).expect("launch");
        let after_launch = sharded.stats();
        assert_eq!(after_launch.shards, 2);
        // Handshake: Hello + Load/Loaded per shard.
        assert_eq!(after_launch.frames_sent, 2);
        assert_eq!(after_launch.frames_received, 4);
        assert!(after_launch.bytes_sent > 0 && after_launch.bytes_received > 0);
        assert_eq!(after_launch.forward_passes, 0);

        sharded.forward_rows(&[0, 5]).expect("forward");
        let after = sharded.stats();
        assert_eq!(after.forward_passes, 1);
        assert_eq!(after.rows_gathered, 2);
        assert!(after.peak_queue_depth >= 1);
        assert_eq!(
            after.halo_rows,
            after_launch.halo_nodes * (sharded.plan().num_layers() as u64 - 1),
            "every halo slot is refreshed between consecutive layers"
        );
        assert_eq!(after.health, ShardHealth::Healthy);
        assert_eq!(after.retries + after.respawns + after.fallbacks, 0);

        // Second call hits the worker-side cache: no RunLayer/Advance, only
        // one Gather round-trip to the owning shard.
        let frames_before = after.frames_sent;
        sharded.forward_rows(&[1]).expect("forward");
        assert_eq!(sharded.stats().forward_passes, 1);
        assert_eq!(sharded.stats().frames_sent, frames_before + 1);
        sharded.shutdown().expect("shutdown");
    }

    #[test]
    fn shutdown_is_idempotent_and_blocks_later_requests() {
        let (graph, model) = graph_and_model();
        let sharded =
            ShardedModel::launch("m", &graph, &model, &ShardOptions::new(2)).expect("launch");
        let report = sharded.shutdown().expect("first");
        assert!(report.is_clean(), "clean fabric says goodbye cleanly");
        assert_eq!(report.outcomes.len(), 2);
        let second = sharded.shutdown().expect("second");
        assert!(second.outcomes.is_empty(), "idempotent second shutdown");
        assert!(matches!(
            sharded.forward_rows(&[0]),
            Err(ServeError::Shard(ShardError::Protocol { .. }))
        ));
    }

    #[test]
    fn out_of_range_nodes_are_typed_errors() {
        let (graph, model) = graph_and_model();
        let sharded =
            ShardedModel::launch("m", &graph, &model, &ShardOptions::new(2)).expect("launch");
        assert!(matches!(
            sharded.forward_rows(&[10_000]),
            Err(ServeError::Shard(_))
        ));
        // The router survives the bad request.
        assert_eq!(sharded.forward_rows(&[0]).expect("forward").rows(), 1);
        sharded.shutdown().expect("shutdown");
    }

    #[test]
    fn launch_rejects_more_shards_than_nodes() {
        let (graph, model) = graph_and_model();
        assert!(matches!(
            ShardedModel::launch("m", &graph, &model, &ShardOptions::new(10_000)),
            Err(ServeError::Shard(ShardError::InvalidConfig { .. }))
        ));
    }

    #[test]
    fn corrupted_frames_are_rejected_and_retried_bit_identically() {
        let (graph, model) = graph_and_model();
        let nodes: Vec<usize> = vec![0, 7, 3, 119, 7, 64];
        let expected = model.forward_rows(&graph, &nodes).expect("oracle");
        // Shard 0, 2nd sent frame = RunLayer{0} (Load was the 1st); shard 1,
        // 3rd received frame = its first LayerDone (after Hello + Loaded).
        let faults = FaultPlan::new().with(0, 2, FaultAction::CorruptSend).with(
            1,
            3,
            FaultAction::CorruptRecv,
        );
        let options = ShardOptions::new(2)
            .with_faults(faults)
            .with_policy(fast_policy());
        let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
        let got = sharded.forward_rows(&nodes).expect("forward");
        assert_eq!(
            got.data(),
            expected.data(),
            "recovery must be bit-identical"
        );
        let stats = sharded.stats();
        assert!(
            stats.checksum_rejects >= 2,
            "both corruptions caught by CRC"
        );
        assert!(stats.retries >= 2, "both RPCs retried in place");
        assert_eq!(stats.respawns, 0, "rejects never cost a respawn");
        assert_eq!(stats.health, ShardHealth::Healthy);
        sharded.shutdown().expect("shutdown");
    }

    #[test]
    fn dropped_frame_is_probed_and_retried() {
        let (graph, model) = graph_and_model();
        let nodes: Vec<usize> = (0..20).collect();
        let expected = model.forward_rows(&graph, &nodes).expect("oracle");
        // Swallow shard 1's first RunLayer: the router times out, probes
        // Ping/Pong, and reissues on the still-synchronised stream.
        let faults = FaultPlan::new().with(1, 2, FaultAction::DropSend);
        let options = ShardOptions::new(2)
            .with_faults(faults)
            .with_policy(fast_policy());
        let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
        let got = sharded.forward_rows(&nodes).expect("forward");
        assert_eq!(got.data(), expected.data());
        let stats = sharded.stats();
        assert!(stats.retries >= 1);
        assert_eq!(stats.health, ShardHealth::Healthy);
        sharded.shutdown().expect("shutdown");
    }

    #[test]
    fn killed_worker_respawns_and_recovers_bit_identically() {
        let (graph, model) = graph_and_model();
        let nodes: Vec<usize> = (0..120).collect();
        let expected = model.forward_rows(&graph, &nodes).expect("oracle");
        let options = ShardOptions::new(2).with_policy(fast_policy());
        let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
        assert_eq!(
            sharded.forward_rows(&nodes).expect("warm forward").data(),
            expected.data()
        );
        // Steady-state kill: the next Gather detects the dead worker, the
        // supervisor respawns and replays it from the export cache.
        sharded.kill_worker(1).expect("kill");
        let got = sharded.forward_rows(&nodes).expect("recovered forward");
        assert_eq!(got.data(), expected.data(), "post-respawn answer diverged");
        let stats = sharded.stats();
        assert_eq!(stats.respawns, 1);
        assert_eq!(stats.health, ShardHealth::Healthy);
        assert_eq!(stats.forward_passes, 1, "replay is not a new full pass");
        sharded.shutdown().expect("shutdown");
    }

    #[test]
    fn scripted_mid_forward_kill_restarts_the_pass() {
        let (graph, model) = graph_and_model();
        let nodes: Vec<usize> = (0..60).collect();
        let expected = model.forward_rows(&graph, &nodes).expect("oracle");
        // Kill shard 0 right before its 2nd supervised RPC — mid first
        // forward, between RunLayer{0} and Advance.
        let faults = FaultPlan::new().with(0, 2, FaultAction::KillWorker);
        let options = ShardOptions::new(2)
            .with_faults(faults)
            .with_policy(fast_policy());
        let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
        let got = sharded.forward_rows(&nodes).expect("forward");
        assert_eq!(got.data(), expected.data());
        let stats = sharded.stats();
        assert!(stats.respawns >= 1);
        assert_eq!(stats.health, ShardHealth::Healthy);
        sharded.shutdown().expect("shutdown");
    }

    #[test]
    fn exhausted_respawn_budget_degrades_to_local_fallback() {
        let (graph, model) = graph_and_model();
        let nodes: Vec<usize> = vec![3, 50, 119, 3];
        let expected = model.forward_rows(&graph, &nodes).expect("oracle");
        let policy = SupervisorPolicy {
            respawn_budget: 0,
            ..fast_policy()
        };
        let options = ShardOptions::new(2).with_policy(policy);
        let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
        sharded.kill_worker(0).expect("kill");
        let got = sharded.forward_rows(&nodes).expect("fallback forward");
        assert_eq!(
            got.data(),
            expected.data(),
            "fallback must be bit-identical"
        );
        assert!(sharded.is_degraded());
        let stats = sharded.stats();
        assert_eq!(stats.health, ShardHealth::Degraded);
        assert!(stats.fallbacks >= 1);
        // Later requests keep resolving from the cached local logits.
        let again = sharded.forward_rows(&nodes).expect("degraded steady state");
        assert_eq!(again.data(), expected.data());
        let report = sharded.shutdown().expect("shutdown");
        assert!(report.degraded);
        assert!(report.outcomes.is_empty(), "fabric already reaped");
    }

    #[test]
    fn shutdown_reports_outcomes_and_reaps_a_pre_killed_worker() {
        let (graph, model) = graph_and_model();
        let sharded = ShardedModel::launch(
            "m",
            &graph,
            &model,
            &ShardOptions::new(2).with_policy(fast_policy()),
        )
        .expect("launch");
        sharded.forward_rows(&[0]).expect("forward");
        // Kill one worker, then shut down without any intervening request:
        // the goodbye to shard 0 fails, but every worker is still reaped.
        sharded.kill_worker(0).expect("kill");
        let report = sharded.shutdown().expect("shutdown");
        assert_eq!(report.outcomes.len(), 2);
        assert!(
            report.outcomes[0].error.is_some(),
            "dead shard's goodbye must surface an error"
        );
        assert!(report.outcomes[0].reaped, "dead worker still reaped");
        assert!(report.outcomes[1].error.is_none());
        assert!(report.outcomes[1].reaped);
    }

    #[test]
    fn seeded_fault_sweep_recovers_bit_identically() {
        let (graph, model) = graph_and_model();
        let nodes: Vec<usize> = (0..120).step_by(3).collect();
        let expected = model.forward_rows(&graph, &nodes).expect("oracle");
        for k in [2usize, 4] {
            for seed in [1u64, 7, 23] {
                let options = ShardOptions::new(k)
                    .with_faults(FaultPlan::seeded(seed, k as u32, 4))
                    .with_policy(fast_policy());
                let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
                let got = sharded.forward_rows(&nodes).expect("forward");
                assert_eq!(
                    got.data(),
                    expected.data(),
                    "k={k} seed={seed} recovery diverged"
                );
                sharded.shutdown().expect("shutdown");
            }
        }
    }

    #[test]
    fn timeout_env_parse_defaults_and_overrides() {
        assert_eq!(shard_timeout_ms(None), 5_000);
        assert_eq!(shard_timeout_ms(Some("250")), 250);
        assert_eq!(shard_timeout_ms(Some(" 250 ")), 250);
        assert_eq!(shard_timeout_ms(Some("0")), 5_000);
        assert_eq!(shard_timeout_ms(Some("junk")), 5_000);
    }

    #[test]
    fn merge_takes_worst_health_and_sums_counters() {
        let mut a = ShardTransportStats {
            retries: 1,
            checksum_rejects: 2,
            ..ShardTransportStats::default()
        };
        let b = ShardTransportStats {
            retries: 2,
            respawns: 1,
            health: ShardHealth::Degraded,
            ..ShardTransportStats::default()
        };
        a.merge(&b);
        assert_eq!(a.retries, 3);
        assert_eq!(a.respawns, 1);
        assert_eq!(a.checksum_rejects, 2);
        assert_eq!(a.health, ShardHealth::Degraded);
    }
}
