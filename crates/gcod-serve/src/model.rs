//! A trained model packaged for serving.

use gcod_core::SplitWorkload;
use gcod_graph::Graph;
use gcod_nn::kernels::KernelKind;
use gcod_nn::models::GnnModel;
use gcod_nn::quant::Precision;
use gcod_nn::workload::InferenceWorkload;
use gcod_platform::{Platform, SimRequest};

/// One model the server owns: the trained [`GnnModel`], the (tuned) graph it
/// answers queries on, and the simulation requests the backend router feeds
/// to the platform suite.
///
/// The name keys batching compatibility: two requests naming the same served
/// model share the dataset, architecture and precision by construction, so
/// the batcher may fuse them into one forward pass.
#[derive(Debug, Clone)]
pub struct ServedModel {
    name: String,
    graph: Graph,
    model: GnnModel,
    baseline: SimRequest,
    gcod_fp32: Option<SimRequest>,
    gcod_int8: Option<SimRequest>,
}

impl ServedModel {
    /// Packages a trained `model` and its inference `graph` under `name`.
    ///
    /// The baseline (full-workload, fp32) simulation request the router uses
    /// for split-less platforms is derived from the graph and model
    /// configuration; attach GCoD split requests with
    /// [`with_gcod_split`](ServedModel::with_gcod_split) to make the
    /// accelerator platforms eligible too.
    pub fn new(name: impl Into<String>, graph: Graph, model: GnnModel) -> Self {
        let baseline = SimRequest::new(InferenceWorkload::build(
            &graph,
            model.config(),
            Precision::Fp32,
        ));
        Self {
            name: name.into(),
            graph,
            model,
            baseline,
            gcod_fp32: None,
            gcod_int8: None,
        }
    }

    /// Attaches the GCoD denser/sparser split with its pruned workloads at
    /// both precisions, making split-aware accelerator platforms eligible
    /// backends for this model.
    #[must_use]
    pub fn with_gcod_split(
        mut self,
        fp32: InferenceWorkload,
        int8: InferenceWorkload,
        split: SplitWorkload,
    ) -> Self {
        self.gcod_fp32 = Some(SimRequest::with_split(fp32, split.clone()));
        self.gcod_int8 = Some(SimRequest::with_split(int8, split));
        self
    }

    /// Renames the served model (the batching/routing key).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Selects the SpMM kernel the CPU execution path aggregates with.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.model.set_kernel(kernel);
        self
    }

    /// Selects the worker-lane count the CPU execution path runs with
    /// (0 = the global pool's count). Bit-deterministic: every count
    /// produces identical answers.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.model.set_workers(workers);
        self
    }

    /// Selects the numeric precision the CPU execution path evaluates with.
    /// Unlike the kernel and worker knobs this DOES change the answers: at
    /// [`Precision::Int8`] / [`Precision::Int16`] every forward pass routes
    /// through the integer compute path, so logits (and occasionally argmax
    /// classifications) shift by the quantization error.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.model.set_precision(precision);
        self
    }

    /// The serving key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph queries are answered on.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The trained model.
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// Whether a GCoD split is attached (accelerator backends eligible).
    pub fn has_split(&self) -> bool {
        self.gcod_fp32.is_some()
    }

    /// The simulation request `platform` should consume for this model:
    /// split-aware platforms get the split request matching their native
    /// precision (`None` when no split is attached — the platform is not an
    /// eligible backend), every other platform gets the baseline request.
    pub fn request_for(&self, platform: &dyn Platform) -> Option<&SimRequest> {
        if platform.requires_split() {
            match platform.native_precision() {
                Some(Precision::Int8) => self.gcod_int8.as_ref(),
                _ => self.gcod_fp32.as_ref(),
            }
        } else {
            Some(&self.baseline)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_baselines::suite;
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;

    fn served() -> ServedModel {
        let graph = GraphGenerator::new(3)
            .generate(&DatasetProfile::custom("sm", 60, 200, 8, 3))
            .unwrap();
        let model = GnnModel::new(ModelConfig::gcn(&graph), 0).unwrap();
        ServedModel::new("sm-gcn", graph, model)
    }

    #[test]
    fn baseline_request_matches_the_model_precision() {
        let m = served();
        assert_eq!(m.name(), "sm-gcn");
        assert!(!m.has_split());
        assert_eq!(m.baseline.precision(), Precision::Fp32);
        assert_eq!(m.baseline.workload.dataset, "sm");
    }

    #[test]
    fn split_less_models_make_accelerators_ineligible() {
        let m = served();
        for platform in suite::all_platforms() {
            let request = m.request_for(platform.as_ref());
            if platform.requires_split() {
                assert!(request.is_none(), "{}", platform.name());
            } else {
                assert!(request.unwrap().split.is_none(), "{}", platform.name());
            }
        }
    }

    #[test]
    fn builders_set_name_kernel_and_workers() {
        let m = served()
            .named("renamed")
            .with_kernel(KernelKind::ParallelCsr)
            .with_workers(2)
            .with_precision(Precision::Int8);
        assert_eq!(m.name(), "renamed");
        assert_eq!(m.model().kernel(), KernelKind::ParallelCsr);
        assert_eq!(m.model().workers(), 2);
        assert_eq!(m.model().precision(), Precision::Int8);
    }

    #[test]
    fn quantized_serving_runs_the_integer_path() {
        let fp32 = served();
        let int8 = served().with_precision(Precision::Int8);
        let graph = fp32.graph().clone();
        let fp32_logits = fp32.model().forward(&graph).unwrap();
        let int8_logits = int8.model().forward(&graph).unwrap();
        assert_ne!(
            fp32_logits, int8_logits,
            "int8 serving must run the quantized path, not fp32"
        );
        // Bit-equal to the explicit quantized runner over the same weights.
        let explicit =
            gcod_nn::quant::QuantizedModel::from_model(fp32.model(), gcod_graph::QuantWidth::I8)
                .forward(&graph)
                .unwrap();
        assert_eq!(int8_logits, explicit);
    }
}
