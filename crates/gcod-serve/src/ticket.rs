//! The client-side half of an asynchronous submission: a [`Ticket`] the
//! client polls or blocks on, and the server-side [`Completion`] that
//! fulfils it.
//!
//! Completion signalling rides on [`gcod_runtime::reactor::Event`], the
//! reactor's one-shot sticky completion cell: the dispatcher fills the
//! result slot, then sets the event, so a waiter can never observe "done"
//! without the result being readable. The wakeup protocol is the same
//! model-checked set-then-notify sequence the serving reactor itself uses.

use crate::error::{Result, ServeError};
use crate::request::ServeResponse;
use gcod_runtime::reactor::Event;
use gcod_runtime::sync::Mutex;
use std::sync::Arc;
use std::time::Duration;

struct TicketState {
    done: Event,
    result: Mutex<Option<Result<ServeResponse>>>,
}

/// A handle to one in-flight request, returned by `Handle::submit`.
///
/// # Contract
///
/// The ticket resolves **exactly once** — with the server's response, or
/// with the error that prevented execution (a rejection such as
/// [`RejectReason::DeadlineExpired`], [`ServeError::UnknownModel`], …) —
/// and every accessor takes `&self`, so a resolved ticket can be read any
/// number of times, from any thread, in any order:
///
/// * [`is_done`](Ticket::is_done) — non-blocking completion probe, never
///   touches the result,
/// * [`try_result`](Ticket::try_result) — non-blocking; `Some(outcome)`
///   once resolved, `None` while pending,
/// * [`wait_timeout`](Ticket::wait_timeout) — blocks up to the timeout;
///   `Some(outcome)` or `None` on timeout,
/// * [`wait`](Ticket::wait) — blocks until resolved and returns the
///   outcome.
///
/// All four agree: once any of them observes completion, all of them do,
/// and they all return clones of the same stored outcome. Tickets are
/// `Clone`; clones share the same completion state.
///
/// [`RejectReason::DeadlineExpired`]: crate::RejectReason::DeadlineExpired
#[derive(Debug, Clone)]
pub struct Ticket {
    state: Arc<TicketState>,
    id: u64,
}

impl std::fmt::Debug for TicketState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TicketState")
            .field("done", &self.done.is_set())
            .finish()
    }
}

impl Ticket {
    /// Identifier of this submission (unique per server, in submission
    /// order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the server has resolved this ticket.
    pub fn is_done(&self) -> bool {
        self.state.done.is_set()
    }

    /// Blocks until the server resolves the ticket and returns the outcome.
    pub fn wait(&self) -> Result<ServeResponse> {
        self.state.done.wait();
        self.take_result()
    }

    /// Blocks at most `timeout`; `None` when the ticket is still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServeResponse>> {
        if self.state.done.wait_timeout(timeout) {
            Some(self.take_result())
        } else {
            None
        }
    }

    /// Non-blocking probe: the outcome if resolved, `None` while pending.
    pub fn try_result(&self) -> Option<Result<ServeResponse>> {
        if self.state.done.is_set() {
            Some(self.take_result())
        } else {
            None
        }
    }

    /// Clones the stored outcome (the slot is filled exactly once before the
    /// event is set, so this never observes an empty slot after `done`).
    fn take_result(&self) -> Result<ServeResponse> {
        self.state
            .result
            .lock_unpoisoned()
            .clone()
            .unwrap_or(Err(ServeError::Canceled))
    }
}

/// The server-side write half of a ticket. Fulfils exactly once; dropping an
/// unfulfilled completion resolves the ticket with [`ServeError::Canceled`]
/// so a crashing dispatcher can never leave clients blocked forever.
#[derive(Debug)]
pub(crate) struct Completion {
    state: Arc<TicketState>,
    fulfilled: bool,
}

impl Completion {
    /// Resolves the ticket with `result`, waking every waiter.
    pub(crate) fn fulfill(mut self, result: Result<ServeResponse>) {
        self.fulfill_inner(result);
    }

    fn fulfill_inner(&mut self, result: Result<ServeResponse>) {
        if self.fulfilled {
            return;
        }
        self.fulfilled = true;
        *self.state.result.lock_unpoisoned() = Some(result);
        // Publish after the slot is filled: waiters wake through the event.
        self.state.done.set();
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.fulfill_inner(Err(ServeError::Canceled));
        }
    }
}

/// Creates a linked ticket/completion pair for submission `id`.
pub(crate) fn ticket_pair(id: u64) -> (Ticket, Completion) {
    let state = Arc::new(TicketState {
        done: Event::new(),
        result: Mutex::new(None),
    });
    (
        Ticket {
            state: Arc::clone(&state),
            id,
        },
        Completion {
            state,
            fulfilled: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Classification, ServeResponse};
    use gcod_nn::Tensor;

    fn response() -> ServeResponse {
        ServeResponse::Classification(Classification {
            model: "m".into(),
            nodes: vec![0],
            classes: vec![1],
            logits: Tensor::zeros(1, 2),
        })
    }

    #[test]
    fn fulfilled_ticket_resolves_for_every_accessor() {
        let (ticket, completion) = ticket_pair(7);
        assert_eq!(ticket.id(), 7);
        assert!(!ticket.is_done());
        assert!(ticket.try_result().is_none());
        assert!(ticket.wait_timeout(Duration::from_millis(1)).is_none());
        completion.fulfill(Ok(response()));
        assert!(ticket.is_done());
        assert_eq!(ticket.try_result().unwrap().unwrap(), response());
        assert_eq!(
            ticket
                .wait_timeout(Duration::from_millis(1))
                .unwrap()
                .unwrap(),
            response()
        );
        // `wait` borrows: a resolved ticket can be read again and again.
        assert_eq!(ticket.wait().unwrap(), response());
        assert_eq!(ticket.wait().unwrap(), response());
    }

    #[test]
    fn wait_blocks_until_fulfilled_cross_thread() {
        let (ticket, completion) = ticket_pair(0);
        let waiter = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(Duration::from_millis(10));
        completion.fulfill(Ok(response()));
        assert_eq!(waiter.join().unwrap().unwrap(), response());
    }

    #[test]
    fn clones_share_the_same_completion() {
        let (ticket, completion) = ticket_pair(3);
        let twin = ticket.clone();
        completion.fulfill(Ok(response()));
        assert!(twin.is_done());
        assert_eq!(twin.wait().unwrap(), response());
        assert_eq!(ticket.wait().unwrap(), response());
    }

    #[test]
    fn dropped_completion_cancels_instead_of_hanging() {
        let (ticket, completion) = ticket_pair(0);
        drop(completion);
        assert_eq!(ticket.wait(), Err(ServeError::Canceled));
    }
}
