//! Pure batching helpers: grouping compatible submissions and splitting a
//! fused result back into per-request pieces.
//!
//! Keeping these free of queue/thread state makes the coalescing logic unit
//! testable on its own; the dispatcher in [`crate::server`] is a thin driver
//! around them.

use gcod_nn::{Result as NnResult, Tensor};

/// Groups `items` by `key`, preserving arrival order both across groups
/// (first-appearance order of each key) and within a group (submission
/// order). This is the coalescing rule of the batcher: every member of a
/// group shares a served model — hence dataset, architecture and precision —
/// and may be fused into one forward pass.
pub(crate) fn group_in_arrival_order<T, K: Eq + Clone>(
    items: Vec<T>,
    key: impl Fn(&T) -> K,
) -> Vec<(K, Vec<T>)> {
    let mut groups: Vec<(K, Vec<T>)> = Vec::new();
    for item in items {
        let k = key(&item);
        match groups.iter_mut().find(|(existing, _)| *existing == k) {
            Some((_, members)) => members.push(item),
            None => groups.push((k, vec![item])),
        }
    }
    groups
}

/// Splits a fused, row-stacked result tensor back into per-member tensors of
/// `lens[i]` rows each. Every row is a bitwise copy, so splitting a fused
/// pass yields exactly the tensors the members would have received from
/// independent passes.
///
/// # Errors
///
/// Propagates shape errors when `lens` does not sum to the stacked row count
/// (a dispatcher bug, surfaced rather than silently truncated).
pub(crate) fn split_stacked(stacked: &Tensor, lens: &[usize]) -> NnResult<Vec<Tensor>> {
    let mut pieces = Vec::with_capacity(lens.len());
    let mut offset = 0usize;
    for &len in lens {
        let rows: Vec<usize> = (offset..offset + len).collect();
        pieces.push(stacked.gather_rows(&rows)?);
        offset += len;
    }
    if offset != stacked.rows() {
        return Err(gcod_nn::NnError::ShapeMismatch {
            context: format!(
                "batch split covered {offset} of {} stacked rows",
                stacked.rows()
            ),
        });
    }
    Ok(pieces)
}

/// Picks the fusion-window size for one batch of compatible requests:
/// how many members one fused forward pass may carry before a request at
/// the *front* of the window would blow its deadline waiting for the pass
/// to finish.
///
/// `slack_ns` is the time remaining until the oldest (earliest) deadline in
/// the window, `None` when no member carries a deadline. `est_request_ns`
/// is the server's running estimate of per-request fused service time, `0`
/// while unknown (nothing measured yet).
///
/// The rule: without a deadline or without an estimate there is nothing to
/// adapt to, so the configured maximum stands (this is what makes adaptive
/// batching *bit-identical* to the fixed-batch oracle on deadline-less
/// traffic). With both, the window is the number of estimated request
/// slots that fit in the slack, clamped to `[1, configured]` — an
/// already-due member still gets one dedicated pass rather than a zero-size
/// window (its expiry is decided by deadline triage, not here).
pub(crate) fn adaptive_max_batch(
    configured: usize,
    slack_ns: Option<u64>,
    est_request_ns: u64,
) -> usize {
    let configured = configured.max(1);
    let Some(slack) = slack_ns else {
        return configured;
    };
    if est_request_ns == 0 {
        return configured;
    }
    usize::try_from(slack / est_request_ns)
        .unwrap_or(configured)
        .clamp(1, configured)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_preserves_arrival_order() {
        let items = vec![("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)];
        let groups = group_in_arrival_order(items, |&(k, _)| k);
        let shape: Vec<(&str, Vec<i32>)> = groups
            .into_iter()
            .map(|(k, members)| (k, members.into_iter().map(|(_, v)| v).collect()))
            .collect();
        assert_eq!(
            shape,
            vec![("a", vec![1, 3]), ("b", vec![2, 5]), ("c", vec![4])]
        );
    }

    #[test]
    fn split_stacked_partitions_exactly() {
        let stacked = Tensor::from_vec(5, 2, (0..10).map(|v| v as f32).collect()).unwrap();
        let pieces = split_stacked(&stacked, &[2, 0, 3]).unwrap();
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[0].data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(pieces[1].shape(), (0, 2));
        assert_eq!(pieces[2].data(), &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        // Lengths that do not cover the stack are a hard error.
        assert!(split_stacked(&stacked, &[2, 2]).is_err());
    }

    #[test]
    fn adaptive_window_defaults_to_configured_without_signal() {
        for configured in 1..=32 {
            // No deadline in the window: nothing to adapt to.
            assert_eq!(adaptive_max_batch(configured, None, 100), configured);
            // Deadline but no estimate yet: same.
            assert_eq!(adaptive_max_batch(configured, Some(1_000), 0), configured);
        }
        // A zero configured cap still serves one request per pass.
        assert_eq!(adaptive_max_batch(0, None, 0), 1);
    }

    #[test]
    fn adaptive_window_tracks_slack_over_estimate() {
        // est = 100ns per request: the window is slack/100, clamped.
        assert_eq!(adaptive_max_batch(32, Some(0), 100), 1);
        assert_eq!(adaptive_max_batch(32, Some(99), 100), 1);
        assert_eq!(adaptive_max_batch(32, Some(100), 100), 1);
        assert_eq!(adaptive_max_batch(32, Some(250), 100), 2);
        assert_eq!(adaptive_max_batch(32, Some(800), 100), 8);
        assert_eq!(adaptive_max_batch(32, Some(3_200), 100), 32);
        // Huge slack clamps to the configured maximum.
        assert_eq!(adaptive_max_batch(32, Some(u64::MAX), 1), 32);
    }

    #[test]
    fn adaptive_window_hits_every_choice_up_to_the_cap() {
        // Every fusion-window choice in [1, configured] is reachable.
        let configured = 8;
        let est = 1_000u64;
        for want in 1..=configured {
            let slack = est * want as u64;
            assert_eq!(adaptive_max_batch(configured, Some(slack), est), want);
        }
        // Beyond the cap the clamp holds.
        assert_eq!(
            adaptive_max_batch(configured, Some(est * 100), est),
            configured
        );
    }
}
