//! Pure batching helpers: grouping compatible submissions and splitting a
//! fused result back into per-request pieces.
//!
//! Keeping these free of queue/thread state makes the coalescing logic unit
//! testable on its own; the dispatcher in [`crate::server`] is a thin driver
//! around them.

use gcod_nn::{Result as NnResult, Tensor};

/// Groups `items` by `key`, preserving arrival order both across groups
/// (first-appearance order of each key) and within a group (submission
/// order). This is the coalescing rule of the batcher: every member of a
/// group shares a served model — hence dataset, architecture and precision —
/// and may be fused into one forward pass.
pub(crate) fn group_in_arrival_order<T, K: Eq + Clone>(
    items: Vec<T>,
    key: impl Fn(&T) -> K,
) -> Vec<(K, Vec<T>)> {
    let mut groups: Vec<(K, Vec<T>)> = Vec::new();
    for item in items {
        let k = key(&item);
        match groups.iter_mut().find(|(existing, _)| *existing == k) {
            Some((_, members)) => members.push(item),
            None => groups.push((k, vec![item])),
        }
    }
    groups
}

/// Splits a fused, row-stacked result tensor back into per-member tensors of
/// `lens[i]` rows each. Every row is a bitwise copy, so splitting a fused
/// pass yields exactly the tensors the members would have received from
/// independent passes.
///
/// # Errors
///
/// Propagates shape errors when `lens` does not sum to the stacked row count
/// (a dispatcher bug, surfaced rather than silently truncated).
pub(crate) fn split_stacked(stacked: &Tensor, lens: &[usize]) -> NnResult<Vec<Tensor>> {
    let mut pieces = Vec::with_capacity(lens.len());
    let mut offset = 0usize;
    for &len in lens {
        let rows: Vec<usize> = (offset..offset + len).collect();
        pieces.push(stacked.gather_rows(&rows)?);
        offset += len;
    }
    if offset != stacked.rows() {
        return Err(gcod_nn::NnError::ShapeMismatch {
            context: format!(
                "batch split covered {offset} of {} stacked rows",
                stacked.rows()
            ),
        });
    }
    Ok(pieces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_preserves_arrival_order() {
        let items = vec![("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)];
        let groups = group_in_arrival_order(items, |&(k, _)| k);
        let shape: Vec<(&str, Vec<i32>)> = groups
            .into_iter()
            .map(|(k, members)| (k, members.into_iter().map(|(_, v)| v).collect()))
            .collect();
        assert_eq!(
            shape,
            vec![("a", vec![1, 3]), ("b", vec![2, 5]), ("c", vec![4])]
        );
    }

    #[test]
    fn split_stacked_partitions_exactly() {
        let stacked = Tensor::from_vec(5, 2, (0..10).map(|v| v as f32).collect()).unwrap();
        let pieces = split_stacked(&stacked, &[2, 0, 3]).unwrap();
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[0].data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(pieces[1].shape(), (0, 2));
        assert_eq!(pieces[2].data(), &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        // Lengths that do not cover the stack are a hard error.
        assert!(split_stacked(&stacked, &[2, 2]).is_err());
    }
}
