//! The shared analytical platform model.
//!
//! Every baseline is described by a [`PlatformSpec`]: peak compute, memory
//! system, phase-level efficiency factors and the aggregation dataflow style.
//! The [`Platform`] implementation turns a spec plus the
//! [`InferenceWorkload`] of a [`SimRequest`] into a [`PerfReport`] using a
//! two-phase roofline: each phase takes `max(compute time, memory time)`
//! where the memory time follows from the traffic the dataflow style
//! implies. Baselines run the unmodified graph, so a request's optional GCoD
//! split is ignored.

use gcod_nn::workload::InferenceWorkload;
use gcod_platform::energy::{EnergyBreakdown, EnergyModel};
use gcod_platform::memory::{Phase, TrafficCounter};
use gcod_platform::report::PerfReport;
use gcod_platform::{Platform, SimRequest};
use serde::{Deserialize, Serialize};

/// How a platform performs the aggregation SpMM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AggregationStyle {
    /// Gathered aggregation (HyGCN): neighbour feature vectors are fetched
    /// per edge; a locality factor models how much of that traffic the
    /// platform's caching / window sliding absorbs.
    Gathered {
        /// Fraction of per-edge feature fetches served on chip.
        locality: f64,
        /// Block-wise adjacency fetching reads this multiple of the useful
        /// adjacency bytes (ultra-sparse matrices make the sliding window
        /// fetch mostly zeros).
        overfetch: f64,
    },
    /// Distributed aggregation (AWB-GCN, CPUs/GPUs with CSR SpMM): the
    /// combined features are streamed once, but the full aggregation output
    /// must be buffered and spills off chip when it exceeds the on-chip
    /// capacity.
    Distributed,
}

/// Analytical description of one baseline platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Platform name used in reports (e.g. "pyg-cpu").
    pub name: String,
    /// Peak multiply-accumulate throughput in MACs per second.
    pub peak_macs_per_second: f64,
    /// Off-chip bandwidth in GB/s.
    pub off_chip_gbps: f64,
    /// On-chip (cache / scratchpad) capacity in bytes.
    pub on_chip_bytes: u64,
    /// Fraction of peak compute achieved on the dense combination phase.
    pub combination_efficiency: f64,
    /// Fraction of peak compute achieved on the sparse aggregation phase
    /// (captures framework overhead, irregular access, load imbalance).
    pub aggregation_efficiency: f64,
    /// Aggregation dataflow style.
    pub style: AggregationStyle,
    /// Fixed software/framework overhead added per layer (kernel launches,
    /// Python dispatch, graph bookkeeping). Zero for dedicated accelerators;
    /// this is what makes PyG/DGL latencies on small citation graphs orders
    /// of magnitude larger than their roofline times.
    pub per_layer_overhead_s: f64,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Nominal board/device power in watts (reported, not derived).
    pub power_watts: f64,
}

impl Platform for PlatformSpec {
    fn name(&self) -> &str {
        &self.name
    }

    fn simulate(&self, request: &SimRequest) -> gcod_platform::Result<PerfReport> {
        Ok(self.roofline(&request.workload))
    }
}

impl PlatformSpec {
    /// The two-phase roofline evaluation of this spec on one workload.
    fn roofline(&self, workload: &InferenceWorkload) -> PerfReport {
        let mut traffic = TrafficCounter::new();
        let mut total_seconds = 0.0f64;
        let mut peak_bandwidth: f64 = 0.0;
        let bytes_per_second = self.off_chip_gbps * 1.0e9;
        let element_bytes = workload.precision.bytes() as u64;

        for layer in &workload.layers {
            // ---- Combination phase.
            let comb_macs = layer.combination_macs as f64;
            let comb_compute_s =
                comb_macs / (self.peak_macs_per_second * self.combination_efficiency).max(1.0);
            // The intermediate (X·W) matrix stays on chip when it fits in
            // half the platform's cache/scratchpad; otherwise it spills and
            // has to be re-read during aggregation.
            let intermediate_spills = layer.intermediate_bytes > self.on_chip_bytes / 2;
            let input_spills = layer.input_feature_bytes > self.on_chip_bytes / 2;
            let input_bytes = if layer.index == 0 {
                (layer.input_feature_bytes as f64 * workload.feature_density.max(0.001)) as u64
            } else if input_spills {
                layer.input_feature_bytes
            } else {
                0
            };
            traffic.read_off_chip(Phase::Combination, input_bytes + layer.weight_bytes);
            let mut comb_bytes = input_bytes + layer.weight_bytes;
            if intermediate_spills {
                traffic.write_off_chip(Phase::Combination, layer.intermediate_bytes);
                comb_bytes += layer.intermediate_bytes;
            } else {
                traffic.move_on_chip(Phase::Combination, layer.intermediate_bytes);
            }
            let comb_memory_s = comb_bytes as f64 / bytes_per_second;
            let comb_s = comb_compute_s.max(comb_memory_s);

            // ---- Aggregation phase.
            let agg_macs = layer.aggregation_macs as f64;
            let agg_compute_s =
                agg_macs / (self.peak_macs_per_second * self.aggregation_efficiency).max(1.0);
            let adjacency_bytes = layer.adjacency_bytes;
            traffic.read_off_chip(Phase::Aggregation, adjacency_bytes);
            let mut agg_bytes = adjacency_bytes;
            match self.style {
                AggregationStyle::Gathered {
                    locality,
                    overfetch,
                } => {
                    // One feature row per edge, partially served on chip.
                    let per_edge =
                        layer.adjacency_nnz as u64 * layer.out_dim as u64 * element_bytes;
                    let off_chip = (per_edge as f64 * (1.0 - locality.clamp(0.0, 1.0))) as u64;
                    traffic.read_off_chip(Phase::Aggregation, off_chip);
                    traffic.move_on_chip(Phase::Aggregation, per_edge - off_chip);
                    agg_bytes += off_chip;
                    // Block-wise scheduling overfetches the sparse adjacency.
                    let extra_adj = (adjacency_bytes as f64 * (overfetch.max(1.0) - 1.0)) as u64;
                    traffic.read_off_chip(Phase::Aggregation, extra_adj);
                    agg_bytes += extra_adj;
                }
                AggregationStyle::Distributed => {
                    // Combined features streamed once: from HBM/DRAM when they
                    // spilled, from the on-chip buffer otherwise.
                    if intermediate_spills {
                        traffic.read_off_chip(Phase::Aggregation, layer.intermediate_bytes);
                        agg_bytes += layer.intermediate_bytes;
                    } else {
                        traffic.move_on_chip(Phase::Aggregation, layer.intermediate_bytes);
                    }
                    // Aggregation output buffer spills when it does not fit.
                    if layer.output_feature_bytes > self.on_chip_bytes {
                        // Partial results are written and re-read roughly once.
                        let spill = 2 * layer.output_feature_bytes;
                        traffic.write_off_chip(Phase::Aggregation, spill / 2);
                        traffic.read_off_chip(Phase::Aggregation, spill / 2);
                        agg_bytes += spill;
                    } else {
                        traffic.move_on_chip(Phase::Aggregation, layer.output_feature_bytes);
                    }
                }
            }
            // The aggregation output feeds the next layer; it only causes
            // off-chip traffic when it exceeds the on-chip capacity (or for
            // the final logits, which are negligible either way).
            if layer.output_feature_bytes > self.on_chip_bytes / 2 {
                traffic.write_off_chip(Phase::Aggregation, layer.output_feature_bytes);
                agg_bytes += layer.output_feature_bytes;
            } else {
                traffic.move_on_chip(Phase::Aggregation, layer.output_feature_bytes);
            }
            let agg_memory_s = agg_bytes as f64 / bytes_per_second;
            let agg_s = agg_compute_s.max(agg_memory_s);

            // Bandwidth *requirement*: traffic over the compute-only time of
            // the phase (what the memory system would have to deliver to keep
            // the compute units busy).
            for (bytes, seconds) in [(comb_bytes, comb_compute_s), (agg_bytes, agg_compute_s)] {
                if seconds > 0.0 {
                    peak_bandwidth = peak_bandwidth.max(bytes as f64 / seconds / 1.0e9);
                }
            }
            total_seconds += comb_s + agg_s + self.per_layer_overhead_s;
        }

        let energy = EnergyBreakdown::from_counts(
            &self.energy,
            workload.combination_macs(),
            workload.aggregation_macs(),
            &traffic,
        );
        let compute_seconds: f64 = workload.total_macs() as f64 / self.peak_macs_per_second;
        PerfReport {
            platform: self.name.clone(),
            dataset: workload.dataset.clone(),
            model: workload.model.clone(),
            latency_ms: total_seconds * 1.0e3,
            cycles: 0,
            off_chip_bytes: traffic.total_off_chip(),
            off_chip_accesses: traffic.off_chip_accesses(64),
            peak_bandwidth_gbps: peak_bandwidth,
            utilization: (compute_seconds / total_seconds.max(1e-12)).min(1.0),
            energy,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;
    use gcod_nn::quant::Precision;

    fn workload() -> InferenceWorkload {
        let g = GraphGenerator::new(1)
            .generate(&DatasetProfile::custom("p", 300, 1200, 32, 4))
            .unwrap();
        InferenceWorkload::build(&g, &ModelConfig::gcn(&g), Precision::Fp32)
    }

    fn spec(style: AggregationStyle) -> PlatformSpec {
        PlatformSpec {
            name: "test".to_string(),
            peak_macs_per_second: 1.0e11,
            off_chip_gbps: 50.0,
            on_chip_bytes: 1 << 20,
            combination_efficiency: 0.5,
            aggregation_efficiency: 0.05,
            style,
            per_layer_overhead_s: 0.0,
            energy: EnergyModel::default(),
            power_watts: 100.0,
        }
    }

    #[test]
    fn simulation_is_positive_and_consistent() {
        let req = SimRequest::new(workload());
        let report = spec(AggregationStyle::Distributed).simulate(&req).unwrap();
        assert!(report.latency_ms > 0.0);
        assert!(report.off_chip_bytes > 0);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
        assert_eq!(report.platform, "test");
    }

    #[test]
    fn gathered_with_poor_locality_moves_more_bytes() {
        let req = SimRequest::new(workload());
        let gathered = spec(AggregationStyle::Gathered {
            locality: 0.1,
            overfetch: 1.0,
        })
        .simulate(&req)
        .unwrap();
        let distributed = spec(AggregationStyle::Distributed).simulate(&req).unwrap();
        assert!(
            gathered.off_chip_bytes > distributed.off_chip_bytes,
            "gathered {} vs distributed {}",
            gathered.off_chip_bytes,
            distributed.off_chip_bytes
        );
    }

    #[test]
    fn better_locality_reduces_traffic() {
        let req = SimRequest::new(workload());
        let poor = spec(AggregationStyle::Gathered {
            locality: 0.0,
            overfetch: 1.0,
        })
        .simulate(&req)
        .unwrap();
        let good = spec(AggregationStyle::Gathered {
            locality: 0.9,
            overfetch: 1.0,
        })
        .simulate(&req)
        .unwrap();
        assert!(good.off_chip_bytes < poor.off_chip_bytes);
    }

    #[test]
    fn faster_compute_reduces_latency_until_memory_bound() {
        let req = SimRequest::new(workload());
        let mut slow = spec(AggregationStyle::Distributed);
        slow.peak_macs_per_second = 1.0e9;
        let mut fast = spec(AggregationStyle::Distributed);
        fast.peak_macs_per_second = 1.0e13;
        let slow_r = slow.simulate(&req).unwrap();
        let fast_r = fast.simulate(&req).unwrap();
        assert!(fast_r.latency_ms < slow_r.latency_ms);
    }

    #[test]
    fn higher_aggregation_efficiency_helps() {
        let req = SimRequest::new(workload());
        let mut ineff = spec(AggregationStyle::Distributed);
        ineff.aggregation_efficiency = 0.001;
        let mut eff = spec(AggregationStyle::Distributed);
        eff.aggregation_efficiency = 0.5;
        assert!(eff.simulate(&req).unwrap().latency_ms < ineff.simulate(&req).unwrap().latency_ms);
    }

    #[test]
    fn small_on_chip_capacity_spills_the_output() {
        let req = SimRequest::new(workload());
        let mut tiny = spec(AggregationStyle::Distributed);
        tiny.on_chip_bytes = 16;
        let mut big = spec(AggregationStyle::Distributed);
        big.on_chip_bytes = 1 << 30;
        assert!(
            tiny.simulate(&req).unwrap().off_chip_bytes
                > big.simulate(&req).unwrap().off_chip_bytes
        );
    }
}
