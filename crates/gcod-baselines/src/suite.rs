//! The full platform suite, in the order the paper's figures enumerate the
//! platforms.

use crate::{awbgcn, cpu, fpga, gpu, hygcn, PlatformSpec};
use gcod_accel::config::AcceleratorConfig;
use gcod_accel::simulator::GcodAccelerator;
use gcod_platform::Platform;

/// All nine baseline platforms of Fig. 9/10: PyG/DGL on CPU and GPU, HyGCN,
/// AWB-GCN and the three Deepburning-GL FPGAs.
pub fn all_baselines() -> Vec<PlatformSpec> {
    vec![
        cpu::pyg_cpu(),
        cpu::dgl_cpu(),
        gpu::pyg_gpu(),
        gpu::dgl_gpu(),
        hygcn::hygcn(),
        awbgcn::awb_gcn(),
        fpga::zc706(),
        fpga::kcu1500(),
        fpga::alveo_u50(),
    ]
}

/// The complete co-design comparison field behind one `dyn Platform`
/// surface: the nine baselines followed by the GCoD accelerator (VCU128)
/// and its 8-bit variant, in the column order of Fig. 9/10.
///
/// Baselines ignore a request's GCoD split; the two accelerator entries
/// require one (`requires_split()` tells them apart, and their
/// `native_precision()` names the workload precision they are built for).
pub fn all_platforms() -> Vec<Box<dyn Platform>> {
    let mut platforms: Vec<Box<dyn Platform>> = Vec::new();
    for spec in all_baselines() {
        platforms.push(Box::new(spec));
    }
    platforms.push(Box::new(GcodAccelerator::new(AcceleratorConfig::vcu128())));
    platforms.push(Box::new(GcodAccelerator::new(
        AcceleratorConfig::vcu128_int8(),
    )));
    platforms
}

/// The reference platform every speedup in the paper is normalized to.
pub fn reference_platform() -> PlatformSpec {
    cpu::pyg_cpu()
}

/// Looks a baseline up by its report name.
pub fn by_name(name: &str) -> Option<PlatformSpec> {
    all_baselines()
        .into_iter()
        .find(|p| p.name == name.to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;
    use gcod_nn::quant::Precision;
    use gcod_nn::workload::InferenceWorkload;
    use gcod_platform::{PlatformError, SimRequest};

    fn request(seed: u64, nodes: usize, edges: usize, feats: usize) -> SimRequest {
        let g = GraphGenerator::new(seed)
            .generate(&DatasetProfile::custom("suite", nodes, edges, feats, 4))
            .unwrap();
        SimRequest::new(InferenceWorkload::build(
            &g,
            &ModelConfig::gcn(&g),
            Precision::Fp32,
        ))
    }

    #[test]
    fn suite_has_nine_platforms_with_unique_names() {
        let suite = all_baselines();
        assert_eq!(suite.len(), 9);
        let names: std::collections::HashSet<&str> =
            suite.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn full_suite_adds_the_two_accelerators() {
        let suite = all_platforms();
        assert_eq!(suite.len(), 11);
        let names: std::collections::HashSet<String> =
            suite.iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names.len(), 11);
        assert!(names.contains("gcod"));
        assert!(names.contains("gcod-8bit"));
        assert_eq!(suite.iter().filter(|p| p.requires_split()).count(), 2);
    }

    #[test]
    fn split_platforms_reject_plain_requests() {
        let req = request(23, 300, 1200, 16);
        for platform in all_platforms() {
            let result = platform.simulate(&req);
            if platform.requires_split() {
                assert!(matches!(result, Err(PlatformError::MissingSplit { .. })));
            } else {
                assert!(result.unwrap().latency_ms > 0.0);
            }
        }
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for p in all_baselines() {
            assert_eq!(by_name(&p.name).unwrap().name, p.name);
        }
        assert!(by_name("tpu").is_none());
    }

    #[test]
    fn reference_is_pyg_cpu_and_is_the_slowest_general_platform() {
        let reference = reference_platform();
        assert_eq!(reference.name, "pyg-cpu");
        let req = request(13, 500, 2000, 32);
        let ref_latency = reference.simulate(&req).unwrap().latency_ms;
        for p in all_baselines() {
            let lat = p.simulate(&req).unwrap().latency_ms;
            assert!(
                lat <= ref_latency * 1.001,
                "{} is slower than the PyG-CPU anchor ({lat} vs {ref_latency})",
                p.name
            );
        }
    }

    #[test]
    fn dedicated_accelerators_beat_general_platforms() {
        let req = request(17, 600, 2400, 64);
        let gpu_latency = by_name("pyg-gpu")
            .unwrap()
            .simulate(&req)
            .unwrap()
            .latency_ms;
        for name in ["hygcn", "awb-gcn"] {
            let lat = by_name(name).unwrap().simulate(&req).unwrap().latency_ms;
            assert!(lat < gpu_latency, "{name} should beat the GPU");
        }
    }
}
