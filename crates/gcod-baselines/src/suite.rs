//! The full baseline suite, in the order the paper's figures enumerate the
//! platforms.

use crate::{awbgcn, cpu, fpga, gpu, hygcn, PlatformSpec};

/// All nine baseline platforms of Fig. 9/10: PyG/DGL on CPU and GPU, HyGCN,
/// AWB-GCN and the three Deepburning-GL FPGAs.
pub fn all_baselines() -> Vec<PlatformSpec> {
    vec![
        cpu::pyg_cpu(),
        cpu::dgl_cpu(),
        gpu::pyg_gpu(),
        gpu::dgl_gpu(),
        hygcn::hygcn(),
        awbgcn::awb_gcn(),
        fpga::zc706(),
        fpga::kcu1500(),
        fpga::alveo_u50(),
    ]
}

/// The reference platform every speedup in the paper is normalized to.
pub fn reference_platform() -> PlatformSpec {
    cpu::pyg_cpu()
}

/// Looks a baseline up by its report name.
pub fn by_name(name: &str) -> Option<PlatformSpec> {
    all_baselines()
        .into_iter()
        .find(|p| p.name == name.to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;
    use gcod_nn::quant::Precision;
    use gcod_nn::workload::InferenceWorkload;

    #[test]
    fn suite_has_nine_platforms_with_unique_names() {
        let suite = all_baselines();
        assert_eq!(suite.len(), 9);
        let names: std::collections::HashSet<&str> =
            suite.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for p in all_baselines() {
            assert_eq!(by_name(&p.name).unwrap().name, p.name);
        }
        assert!(by_name("tpu").is_none());
    }

    #[test]
    fn reference_is_pyg_cpu_and_is_the_slowest_general_platform() {
        let reference = reference_platform();
        assert_eq!(reference.name, "pyg-cpu");
        let g = GraphGenerator::new(13)
            .generate(&DatasetProfile::custom("suite", 500, 2000, 32, 4))
            .unwrap();
        let w = InferenceWorkload::build(&g, &ModelConfig::gcn(&g), Precision::Fp32);
        let ref_latency = reference.simulate(&w).latency_ms;
        for p in all_baselines() {
            let lat = p.simulate(&w).latency_ms;
            assert!(
                lat <= ref_latency * 1.001,
                "{} is slower than the PyG-CPU anchor ({lat} vs {ref_latency})",
                p.name
            );
        }
    }

    #[test]
    fn dedicated_accelerators_beat_general_platforms() {
        let g = GraphGenerator::new(17)
            .generate(&DatasetProfile::custom("acc", 600, 2400, 64, 4))
            .unwrap();
        let w = InferenceWorkload::build(&g, &ModelConfig::gcn(&g), Precision::Fp32);
        let gpu_latency = by_name("pyg-gpu").unwrap().simulate(&w).latency_ms;
        for name in ["hygcn", "awb-gcn"] {
            let lat = by_name(name).unwrap().simulate(&w).latency_ms;
            assert!(lat < gpu_latency, "{name} should beat the GPU");
        }
    }
}
