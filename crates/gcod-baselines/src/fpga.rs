//! Deepburning-GL FPGA baselines (Liang et al., ICCAD 2020).
//!
//! Deepburning-GL automatically generates GNN accelerators for a target FPGA
//! board. The paper evaluates three boards (Table V): the small ZC706
//! (900 DSPs, 19.2 MB, 12.8 GB/s DDR3), the mid-range KCU1500 (5520 DSPs,
//! 75.9 MB, 76.8 GB/s DDR4) and the HBM-equipped Alveo U50 (5952 DSPs,
//! 227.3 MB, 316 GB/s). Being auto-generated rather than hand-tuned, these
//! designs reach only a fraction of the per-DSP efficiency of HyGCN/AWB-GCN —
//! which is why the paper's speedups over them are in the hundreds to
//! thousands.

use crate::{AggregationStyle, PlatformSpec};
use gcod_accel::energy::EnergyModel;

fn deepburning(
    name: &str,
    dsps: f64,
    clock_hz: f64,
    on_chip_mb: f64,
    gbps: f64,
    watts: f64,
) -> PlatformSpec {
    PlatformSpec {
        name: name.to_string(),
        peak_macs_per_second: dsps * clock_hz,
        off_chip_gbps: gbps,
        on_chip_bytes: (on_chip_mb * 1024.0 * 1024.0) as u64,
        // Auto-generated designs: far below the hand-tuned accelerators on
        // both phases (the paper's speedups over Deepburning-GL are in the
        // hundreds to thousands).
        combination_efficiency: 0.10,
        aggregation_efficiency: 0.015,
        style: AggregationStyle::Gathered {
            locality: 0.4,
            overfetch: 3.0,
        },
        per_layer_overhead_s: 0.0,
        energy: EnergyModel {
            pj_per_mac: 2.5,
            pj_per_on_chip_byte: 2.0,
            pj_per_off_chip_byte: 60.0,
        },
        power_watts: watts,
    }
}

/// Deepburning-GL on the Zynq ZC706 (220 MHz, 900 DSPs, 12.8 GB/s DDR3).
pub fn zc706() -> PlatformSpec {
    deepburning("zc706", 900.0, 150.0e6, 19.2, 12.8, 10.0)
}

/// Deepburning-GL on the Kintex KCU1500 (5520 DSPs, 76.8 GB/s DDR4).
pub fn kcu1500() -> PlatformSpec {
    deepburning("kcu1500", 5520.0, 200.0e6, 75.9, 76.8, 25.0)
}

/// Deepburning-GL on the Alveo U50 (5952 DSPs, 316 GB/s HBM2).
pub fn alveo_u50() -> PlatformSpec {
    deepburning("alveo-u50", 5952.0, 200.0e6, 227.3, 316.0, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Platform, SimRequest};
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;
    use gcod_nn::quant::Precision;
    use gcod_nn::workload::InferenceWorkload;

    fn workload() -> InferenceWorkload {
        let g = GraphGenerator::new(11)
            .generate(&DatasetProfile::custom("fpga", 700, 2800, 64, 4))
            .unwrap();
        InferenceWorkload::build(&g, &ModelConfig::gcn(&g), Precision::Fp32)
    }

    #[test]
    fn larger_boards_are_faster() {
        let w = SimRequest::new(workload());
        let small = zc706().simulate(&w).unwrap().latency_ms;
        let mid = kcu1500().simulate(&w).unwrap().latency_ms;
        let big = alveo_u50().simulate(&w).unwrap().latency_ms;
        assert!(mid < small, "kcu1500 {mid} !< zc706 {small}");
        assert!(big <= mid, "alveo {big} !> kcu1500 {mid}");
    }

    #[test]
    fn board_parameters_follow_table5() {
        assert_eq!(zc706().off_chip_gbps, 12.8);
        assert_eq!(kcu1500().off_chip_gbps, 76.8);
        assert_eq!(alveo_u50().off_chip_gbps, 316.0);
        assert!(zc706().peak_macs_per_second < kcu1500().peak_macs_per_second);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(zc706().name(), "zc706");
        assert_eq!(kcu1500().name(), "kcu1500");
        assert_eq!(alveo_u50().name(), "alveo-u50");
    }
}
