//! Baseline platform models for the GCoD evaluation (Table V).
//!
//! The paper compares GCoD against nine baselines: PyTorch Geometric and DGL
//! on a Xeon E5-2680 v3 CPU and an RTX 8000 GPU, the HyGCN and AWB-GCN
//! dedicated accelerators, and Deepburning-GL on three FPGA boards (ZC706,
//! KCU1500, Alveo U50). Each baseline is reproduced here as an analytical
//! platform model parameterised with its Table V system configuration plus
//! the microarchitectural behaviour that differentiates it:
//!
//! * CPUs/GPUs ([`cpu`], [`gpu`]) are rooflines with framework-efficiency
//!   factors for the irregular aggregation phase,
//! * HyGCN ([`hygcn`]) uses *gathered* aggregation: neighbour features are
//!   fetched per edge, so feature traffic scales with the edge count and is
//!   only partially absorbed by its window-sliding locality optimisation,
//! * AWB-GCN ([`awbgcn`]) uses *distributed* aggregation with runtime
//!   workload rebalancing: good utilization but the full intermediate
//!   aggregation buffer spills off chip for large graphs,
//! * the Deepburning-GL FPGAs ([`fpga`]) are generic DSP rooflines.
//!
//! All models return the same [`gcod_accel::report::PerfReport`] as the GCoD
//! simulator, so the benchmark harness can compare them directly.
//!
//! # Example
//!
//! ```
//! use gcod_baselines::{suite, Platform, SimRequest};
//! use gcod_graph::{DatasetProfile, GraphGenerator};
//! use gcod_nn::models::ModelConfig;
//! use gcod_nn::quant::Precision;
//! use gcod_nn::workload::InferenceWorkload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = GraphGenerator::new(0).generate(&DatasetProfile::cora().scaled(0.05))?;
//! let workload = InferenceWorkload::build(&graph, &ModelConfig::gcn(&graph), Precision::Fp32);
//! let request = SimRequest::new(workload);
//! for platform in suite::all_platforms() {
//!     if !platform.requires_split() {
//!         assert!(platform.simulate(&request)?.latency_ms > 0.0);
//!     }
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod awbgcn;
pub mod cpu;
pub mod fpga;
pub mod gpu;
pub mod hygcn;
mod platform;
pub mod suite;

pub use gcod_platform::{Platform, PlatformError, SimRequest};
pub use platform::{AggregationStyle, PlatformSpec};
