//! CPU baselines: PyTorch Geometric and DGL on the Intel Xeon E5-2680 v3
//! workstation of Table V (2.5 GHz, 24 cores, 30 MB L3, 136.5 GB/s DDR4,
//! 150 W).
//!
//! The efficiency factors encode two observations behind the paper's
//! CPU numbers: (1) sparse scatter/gather aggregation achieves a tiny
//! fraction of peak FLOPs on CPUs, and (2) framework dispatch overhead
//! (Python, kernel launches, graph bookkeeping) dominates small citation
//! graphs — which is why the paper's speedups over PyG-CPU reach four to five
//! digits. DGL's fused kernels have markedly lower overhead than PyG, which
//! reproduces the paper's DGL-CPU ≈ 14× PyG-CPU gap.

use crate::{AggregationStyle, PlatformSpec};
use gcod_accel::energy::EnergyModel;

/// Peak MAC throughput of the 24-core Xeon E5-2680 v3 (AVX2 FMA).
const XEON_PEAK_MACS: f64 = 24.0 * 2.5e9 * 8.0;

/// PyTorch Geometric on the Xeon CPU.
pub fn pyg_cpu() -> PlatformSpec {
    PlatformSpec {
        name: "pyg-cpu".to_string(),
        peak_macs_per_second: XEON_PEAK_MACS,
        off_chip_gbps: 136.5,
        on_chip_bytes: 30 * 1024 * 1024,
        combination_efficiency: 0.05,
        aggregation_efficiency: 0.0005,
        style: AggregationStyle::Distributed,
        per_layer_overhead_s: 0.030,
        energy: cpu_energy(),
        power_watts: 150.0,
    }
}

/// Deep Graph Library on the Xeon CPU.
pub fn dgl_cpu() -> PlatformSpec {
    PlatformSpec {
        name: "dgl-cpu".to_string(),
        combination_efficiency: 0.10,
        aggregation_efficiency: 0.006,
        per_layer_overhead_s: 0.0025,
        ..pyg_cpu()
    }
}

fn cpu_energy() -> EnergyModel {
    // CPUs burn far more energy per operation than a dedicated accelerator:
    // out-of-order overhead, cache hierarchy, DRAM instead of HBM.
    EnergyModel {
        pj_per_mac: 50.0,
        pj_per_on_chip_byte: 10.0,
        pj_per_off_chip_byte: 70.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Platform, SimRequest};
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;
    use gcod_nn::quant::Precision;
    use gcod_nn::workload::InferenceWorkload;

    fn workload() -> InferenceWorkload {
        let g = GraphGenerator::new(3)
            .generate(&DatasetProfile::custom("cpu", 500, 2000, 64, 4))
            .unwrap();
        InferenceWorkload::build(&g, &ModelConfig::gcn(&g), Precision::Fp32)
    }

    #[test]
    fn dgl_is_faster_than_pyg_on_cpu() {
        let w = SimRequest::new(workload());
        let pyg = pyg_cpu().simulate(&w).unwrap();
        let dgl = dgl_cpu().simulate(&w).unwrap();
        assert!(
            dgl.latency_ms < pyg.latency_ms,
            "dgl {} !< pyg {}",
            dgl.latency_ms,
            pyg.latency_ms
        );
        // The paper's gap is roughly an order of magnitude.
        assert!(pyg.latency_ms / dgl.latency_ms > 3.0);
    }

    #[test]
    fn small_graph_latency_is_overhead_dominated() {
        let w = SimRequest::new(workload());
        let pyg = pyg_cpu().simulate(&w).unwrap();
        // Two layers x 30 ms overhead = at least 60 ms.
        assert!(pyg.latency_ms >= 60.0);
    }

    #[test]
    fn names_match_report_labels() {
        assert_eq!(pyg_cpu().name(), "pyg-cpu");
        assert_eq!(dgl_cpu().name(), "dgl-cpu");
    }

    #[test]
    fn peak_compute_matches_xeon_spec() {
        let spec = pyg_cpu();
        assert!((spec.peak_macs_per_second - 4.8e11).abs() / 4.8e11 < 0.01);
    }
}
