//! GPU baselines: PyTorch Geometric and DGL on the NVIDIA RTX 8000 of
//! Table V (1.35 GHz, 4352 CUDA cores, 5.5 MB L2, 616 GB/s GDDR6, 250 W).
//!
//! GPUs execute the dense combination phase near their roofline but the
//! sparse aggregation phase at a small fraction of peak (uncoalesced gathers,
//! atomics, load imbalance across warps). Kernel-launch overhead per layer is
//! far smaller than on the CPU but not zero — on the citation graphs it is
//! still the dominant term, which is why the paper's GPU speedups over
//! PyG-CPU sit around 25–50× for Cora-sized graphs.

use crate::{AggregationStyle, PlatformSpec};
use gcod_accel::energy::EnergyModel;

/// Peak MAC throughput of the RTX 8000 (FP32 FMA on 4352 cores).
const RTX8000_PEAK_MACS: f64 = 4352.0 * 1.35e9;

/// PyTorch Geometric on the RTX 8000.
pub fn pyg_gpu() -> PlatformSpec {
    PlatformSpec {
        name: "pyg-gpu".to_string(),
        peak_macs_per_second: RTX8000_PEAK_MACS,
        off_chip_gbps: 616.0,
        on_chip_bytes: 5_767_168, // 5.5 MB L2
        combination_efficiency: 0.35,
        aggregation_efficiency: 0.02,
        style: AggregationStyle::Distributed,
        per_layer_overhead_s: 0.0007,
        energy: gpu_energy(),
        power_watts: 250.0,
    }
}

/// Deep Graph Library on the RTX 8000. DGL's GPU kernels carry a little more
/// per-layer graph-preparation overhead than PyG's, matching the paper's
/// ordering (PyG-GPU speedups > DGL-GPU speedups over the same CPU anchor).
pub fn dgl_gpu() -> PlatformSpec {
    PlatformSpec {
        name: "dgl-gpu".to_string(),
        aggregation_efficiency: 0.025,
        per_layer_overhead_s: 0.0012,
        ..pyg_gpu()
    }
}

fn gpu_energy() -> EnergyModel {
    EnergyModel {
        pj_per_mac: 8.0,
        pj_per_on_chip_byte: 4.0,
        pj_per_off_chip_byte: 25.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::pyg_cpu;
    use crate::{Platform, SimRequest};
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;
    use gcod_nn::quant::Precision;
    use gcod_nn::workload::InferenceWorkload;

    fn workload() -> InferenceWorkload {
        let g = GraphGenerator::new(5)
            .generate(&DatasetProfile::custom("gpu", 500, 2000, 64, 4))
            .unwrap();
        InferenceWorkload::build(&g, &ModelConfig::gcn(&g), Precision::Fp32)
    }

    #[test]
    fn gpu_is_much_faster_than_cpu() {
        let w = SimRequest::new(workload());
        let cpu = pyg_cpu().simulate(&w).unwrap();
        let gpu = pyg_gpu().simulate(&w).unwrap();
        let speedup = cpu.latency_ms / gpu.latency_ms;
        assert!(speedup > 10.0, "GPU speedup over CPU only {speedup:.1}x");
    }

    #[test]
    fn pyg_gpu_beats_dgl_gpu_on_small_graphs() {
        // Matches the paper's ordering of speedups (294x vs 460x over the
        // respective backends implies PyG-GPU has the lower latency).
        let w = SimRequest::new(workload());
        let pyg = pyg_gpu().simulate(&w).unwrap();
        let dgl = dgl_gpu().simulate(&w).unwrap();
        assert!(pyg.latency_ms < dgl.latency_ms);
    }

    #[test]
    fn gpu_energy_per_inference_is_lower_than_cpu() {
        let w = SimRequest::new(workload());
        let cpu = pyg_cpu().simulate(&w).unwrap();
        let gpu = pyg_gpu().simulate(&w).unwrap();
        assert!(gpu.energy_joules() < cpu.energy_joules());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(pyg_gpu().name(), "pyg-gpu");
        assert_eq!(dgl_gpu().name(), "dgl-gpu");
    }
}
