//! AWB-GCN baseline (Geng et al., MICRO 2020).
//!
//! AWB-GCN runs 4096 PEs at 330 MHz on an Intel D5005 FPGA with a 244 Mb
//! scratchpad and 76.8 GB/s of DDR4 (Table V). It adopts *distributed*
//! (column-wise) aggregation and fixes the resulting workload imbalance with
//! three runtime autotuning techniques, reaching high PE utilization — the
//! paper credits it as the strongest prior accelerator, and GCoD's average
//! gain over it is 2.5×. Its remaining weaknesses, which the GCoD co-design
//! attacks, are (1) the full aggregation-result buffer that spills off chip
//! for larger graphs and (2) a DDR4 memory system with a sixth of GCoD's HBM
//! bandwidth.

use crate::{AggregationStyle, PlatformSpec};
use gcod_accel::energy::EnergyModel;

/// Peak MAC throughput: 4096 PEs at 330 MHz.
const AWBGCN_PEAK_MACS: f64 = 4096.0 * 330.0e6;

/// The AWB-GCN accelerator model.
pub fn awb_gcn() -> PlatformSpec {
    PlatformSpec {
        name: "awb-gcn".to_string(),
        peak_macs_per_second: AWBGCN_PEAK_MACS,
        off_chip_gbps: 76.8,
        on_chip_bytes: 244 * 1024 * 1024 / 8, // 244 Mb scratchpad
        combination_efficiency: 0.85,
        // Runtime rebalancing recovers most — not all — of the imbalance.
        aggregation_efficiency: 0.55,
        style: AggregationStyle::Distributed,
        per_layer_overhead_s: 0.0,
        energy: EnergyModel {
            pj_per_mac: 1.5,
            pj_per_on_chip_byte: 1.5,
            pj_per_off_chip_byte: 55.0, // DDR4 costs more per byte than HBM
        },
        power_watts: 215.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hygcn::hygcn;
    use crate::{Platform, SimRequest};
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::{ModelConfig, ModelKind};
    use gcod_nn::quant::Precision;
    use gcod_nn::workload::InferenceWorkload;

    /// Cora-scale workload with the real dataset's sparse bag-of-words
    /// features (≈1.3% density) so the aggregation phase — not the feature
    /// streaming — differentiates the accelerators, as in the paper.
    fn cora_workload() -> InferenceWorkload {
        let profile = DatasetProfile::cora();
        let tiny = GraphGenerator::new(9)
            .generate(&profile.scaled(0.02))
            .unwrap();
        let mut cfg = ModelConfig::for_kind(ModelKind::Gcn, &tiny);
        cfg.input_dim = profile.feature_dim;
        cfg.hidden_dim = 16;
        InferenceWorkload::from_stats(
            "cora",
            profile.nodes,
            profile.edges * 2,
            0.013,
            &cfg,
            Precision::Fp32,
        )
    }

    #[test]
    fn awbgcn_beats_hygcn() {
        // The paper reports AWB-GCN as roughly 3x faster than HyGCN on
        // average; our models must preserve the ordering.
        let w = SimRequest::new(cora_workload());
        let hy = hygcn().simulate(&w).unwrap().latency_ms;
        let awb = awb_gcn().simulate(&w).unwrap().latency_ms;
        assert!(awb < hy, "awb {awb} !< hygcn {hy}");
    }

    #[test]
    fn utilization_is_high_thanks_to_rebalancing() {
        let w = SimRequest::new(cora_workload());
        let report = awb_gcn().simulate(&w).unwrap();
        assert!(
            report.utilization > 0.1,
            "utilization {}",
            report.utilization
        );
    }

    #[test]
    fn peak_compute_matches_4096_pes() {
        assert!((awb_gcn().peak_macs_per_second - 1.35168e12).abs() / 1.35e12 < 0.01);
    }
}
