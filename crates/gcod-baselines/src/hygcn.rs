//! HyGCN baseline (Yan et al., HPCA 2020).
//!
//! HyGCN is a hybrid-architecture ASIC: 32 SIMD cores handle the aggregation
//! phase, an 8-lane systolic array handles the combination phase, backed by
//! 22 MB of on-chip buffers and a 256 GB/s HBM (Table V). Its aggregation is
//! *gathered*: for every node the neighbour feature vectors are fetched and
//! reduced, with a window-sliding/shrinking optimisation that improves — but
//! does not eliminate — the irregular off-chip feature traffic. Coarse
//! block-wise scheduling leaves part of the compute idle on power-law graphs,
//! which is the utilization gap GCoD's chunk design closes (and the source of
//! the paper's average 7.8× speedup over HyGCN).

use crate::{AggregationStyle, PlatformSpec};
use gcod_accel::energy::EnergyModel;

/// Peak MAC throughput: 32 SIMD16 cores + 8×128 systolic MACs at 1 GHz.
const HYGCN_PEAK_MACS: f64 = (32.0 * 16.0 + 8.0 * 128.0) * 1.0e9;

/// The HyGCN accelerator model.
pub fn hygcn() -> PlatformSpec {
    PlatformSpec {
        name: "hygcn".to_string(),
        peak_macs_per_second: HYGCN_PEAK_MACS,
        off_chip_gbps: 256.0,
        on_chip_bytes: 22 * 1024 * 1024 + 128 * 1024,
        // Coarse-grained block scheduling: decent dense efficiency, poor
        // utilization on the irregular aggregation phase.
        combination_efficiency: 0.60,
        aggregation_efficiency: 0.22,
        style: AggregationStyle::Gathered {
            locality: 0.45,
            overfetch: 6.0,
        },
        per_layer_overhead_s: 0.0,
        energy: EnergyModel {
            pj_per_mac: 1.2,
            pj_per_on_chip_byte: 1.8,
            pj_per_off_chip_byte: 40.0,
        },
        power_watts: 6.7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::pyg_cpu;
    use crate::gpu::pyg_gpu;
    use crate::{Platform, SimRequest};
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;
    use gcod_nn::quant::Precision;
    use gcod_nn::workload::InferenceWorkload;

    fn workload() -> InferenceWorkload {
        let g = GraphGenerator::new(7)
            .generate(&DatasetProfile::custom("hy", 600, 2500, 64, 4))
            .unwrap();
        InferenceWorkload::build(&g, &ModelConfig::gcn(&g), Precision::Fp32)
    }

    #[test]
    fn hygcn_beats_cpu_and_gpu() {
        let w = SimRequest::new(workload());
        let cpu = pyg_cpu().simulate(&w).unwrap().latency_ms;
        let gpu = pyg_gpu().simulate(&w).unwrap().latency_ms;
        let hy = hygcn().simulate(&w).unwrap().latency_ms;
        assert!(hy < gpu, "hygcn {hy} !< gpu {gpu}");
        assert!(hy < cpu);
    }

    #[test]
    fn gathered_aggregation_generates_feature_traffic() {
        let w = SimRequest::new(workload());
        let report = hygcn().simulate(&w).unwrap();
        // Aggregation-phase off-chip traffic should exceed the raw adjacency
        // size because neighbour features are re-fetched.
        let adjacency_bytes: u64 = w.workload.layers.iter().map(|l| l.adjacency_bytes).sum();
        assert!(report.traffic.off_chip_read_aggregation > adjacency_bytes);
    }

    #[test]
    fn matches_published_power_budget() {
        assert!((hygcn().power_watts - 6.7).abs() < 1e-9);
    }
}
