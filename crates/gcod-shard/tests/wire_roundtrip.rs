//! Property tests for the shard wire codec: arbitrary protocol messages
//! survive encode → frame → decode bit-for-bit, and corrupt or truncated
//! frames are rejected with typed errors — never a panic.

use std::io::Cursor;

use proptest::collection::vec;
use proptest::prelude::*;

use gcod_nn::layers::{Activation, DenseLayer};
use gcod_nn::Tensor;
use gcod_shard::{read_frame, write_frame, ShardReply, ShardRequest, ShardSpec, Wire, WireError};

/// Arbitrary f32 values drawn through the shim's f64 range (the vendored
/// proptest has no f32 strategy), plus exact dyadic fractions so the
/// round-trip sees "clean" values too.
fn arb_f32() -> impl Strategy<Value = f32> {
    (-1.0e6f64..1.0e6f64).prop_map(|v| v as f32)
}

fn arb_tensor(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1usize..max_dim, 1usize..max_dim).prop_flat_map(|(rows, cols)| {
        vec(arb_f32(), rows * cols..rows * cols + 1)
            .prop_map(move |data| Tensor::from_vec(rows, cols, data).expect("valid tensor"))
    })
}

fn arb_string() -> impl Strategy<Value = String> {
    (0u64..u64::MAX).prop_map(|v| format!("msg-{v:x}-\u{2713}"))
}

fn arb_layer() -> impl Strategy<Value = DenseLayer> {
    (1usize..4, 1usize..4, 0u32..2).prop_flat_map(|(din, dout, act)| {
        (
            vec(arb_f32(), din * dout..din * dout + 1),
            vec(arb_f32(), dout..dout + 1),
        )
            .prop_map(move |(w, b)| DenseLayer {
                weight: Tensor::from_vec(din, dout, w).expect("weight"),
                bias: Tensor::from_vec(1, dout, b).expect("bias"),
                activation: if act == 0 {
                    Activation::Relu
                } else {
                    Activation::Linear
                },
            })
    })
}

/// A structurally coherent random spec: `owned + halo` local nodes in a
/// sorted ordering, a diagonal-ish propagation slice, per-local features.
fn arb_spec() -> impl Strategy<Value = ShardSpec> {
    (1usize..5, 0usize..4, 1usize..4).prop_flat_map(|(owned, halo, fdim)| {
        let locals = owned + halo;
        (
            vec(arb_f32(), locals * fdim..locals * fdim + 1),
            arb_layer(),
            0u32..u32::MAX,
        )
            .prop_map(move |(feat, layer, salt)| {
                // Alternate owned/halo positions deterministically from the
                // salt so both interleavings are exercised.
                let mut owned_pos = Vec::new();
                let mut halo_pos = Vec::new();
                for pos in 0..locals as u32 {
                    let want_owned = (salt >> (pos % 31)) & 1 == 0;
                    if (want_owned && owned_pos.len() < owned) || halo_pos.len() >= halo {
                        owned_pos.push(pos);
                    } else {
                        halo_pos.push(pos);
                    }
                }
                let indptr: Vec<u64> = (0..=owned as u64).collect();
                let indices: Vec<u32> = owned_pos.clone();
                let values: Vec<f32> = (0..owned).map(|i| 0.5 + i as f32).collect();
                ShardSpec {
                    shard_id: salt % 8,
                    num_shards: 8,
                    layers: vec![layer],
                    residual: salt % 2 == 0,
                    prop: gcod_graph::CsrMatrix::from_parts(owned, locals, indptr, indices, values)
                        .expect("valid prop"),
                    features: Tensor::from_vec(locals, fdim, feat).expect("features"),
                    owned_pos,
                    halo_pos,
                    export_rows: (0..owned as u32).collect(),
                }
            })
    })
}

fn arb_request() -> impl Strategy<Value = ShardRequest> {
    (0usize..6).prop_flat_map(|variant| {
        // One strategy per variant, all unified through prop_map into the
        // enum; cheap variants reuse Just-like mapping of dummy draws.
        ((arb_spec(), arb_tensor(4)), (vec(0u32..64, 0..5), 0u32..8)).prop_map(
            move |((spec, tensor), (rows, layer))| match variant {
                0 => ShardRequest::Ping,
                1 => ShardRequest::Load(Box::new(spec)),
                2 => ShardRequest::RunLayer { layer },
                3 => ShardRequest::Advance { halo: tensor },
                4 => ShardRequest::Gather { rows },
                _ => ShardRequest::Shutdown,
            },
        )
    })
}

fn arb_reply() -> impl Strategy<Value = ShardReply> {
    (0usize..8).prop_flat_map(|variant| {
        ((arb_tensor(4), arb_string()), (0u32..1024, 0u32..1024)).prop_map(
            move |((tensor, message), (a, b))| match variant {
                0 => ShardReply::Hello { shard: a },
                1 => ShardReply::Pong,
                2 => ShardReply::Loaded { owned: a, halo: b },
                3 => ShardReply::LayerDone { exports: tensor },
                4 => ShardReply::Advanced,
                5 => ShardReply::Rows(tensor),
                6 => ShardReply::Bye,
                _ => ShardReply::Err { message },
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Requests survive encode → frame → decode bit-identically.
    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let mut buf = Vec::new();
        let written = write_frame(&mut buf, &req).expect("write frame");
        prop_assert_eq!(written, buf.len());
        let (back, consumed): (ShardRequest, usize) =
            read_frame(&mut Cursor::new(&buf)).expect("read frame");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(back, req);
    }

    /// Replies survive encode → frame → decode bit-identically.
    #[test]
    fn replies_roundtrip(reply in arb_reply()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &reply).expect("write frame");
        let (back, _): (ShardReply, usize) =
            read_frame(&mut Cursor::new(&buf)).expect("read frame");
        prop_assert_eq!(back, reply);
    }

    /// Flipping any single bit inside the frame *body* (version byte or
    /// payload, both covered by the CRC) is always rejected as a checksum
    /// mismatch — CRC-32 detects all single-bit errors.
    #[test]
    fn corrupt_body_bits_always_rejected(reply in arb_reply(), pick in 0usize..1_000_000, bit in 0usize..8) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &reply).expect("write frame");
        let body_len = buf.len() - 8; // minus length prefix and checksum
        let target = 4 + pick % body_len;
        buf[target] ^= 1 << bit;
        let result: Result<(ShardReply, usize), WireError> =
            read_frame(&mut Cursor::new(&buf));
        prop_assert!(
            matches!(result, Err(WireError::BadChecksum { .. })),
            "expected BadChecksum, got {:?}", result
        );
    }

    /// Truncating the stream anywhere short of a full frame yields a typed
    /// error (Closed at offset 0, otherwise an I/O error), never a panic
    /// and never a bogus message.
    #[test]
    fn truncated_frames_always_rejected(req in arb_request(), pick in 0usize..1_000_000) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).expect("write frame");
        let cut = pick % buf.len();
        let result: Result<(ShardRequest, usize), WireError> =
            read_frame(&mut Cursor::new(&buf[..cut]));
        match result {
            Err(WireError::Closed) => prop_assert!(cut < 4, "Closed only before a full header"),
            Err(WireError::Io { .. }) => prop_assert!(cut >= 4),
            other => prop_assert!(false, "expected typed rejection, got {:?}", other),
        }
    }

    /// Feeding arbitrary garbage to the raw decoder returns without
    /// panicking: either a (valid) message or a typed error.
    #[test]
    fn garbage_bytes_never_panic(bytes in vec(0u64..256, 0..64)) {
        let raw: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = ShardRequest::from_wire(&raw);
        let _ = ShardReply::from_wire(&raw);
        let _ = read_frame::<_, ShardReply>(&mut Cursor::new(&raw));
    }
}
