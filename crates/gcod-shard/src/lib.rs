//! Cross-process sharded serving for the GCoD reproduction.
//!
//! Production-scale graphs (the Reddit-class workloads of the paper's
//! Table III) do not fit one serving process: the feature matrix alone is
//! hundreds of megabytes before any activations. This crate splits one
//! served GCN across OS processes the way BNS-GCN splits training — each
//! worker owns a partition of the nodes plus a *halo* of 1-hop boundary
//! neighbours, and shards exchange boundary activations between layers.
//!
//! The pieces, bottom-up:
//!
//! * [`wire`] — hand-rolled, zero-dependency binary serialisation with
//!   fully-typed decode errors (corrupt bytes never panic),
//! * [`frame`] — length-prefixed frames with a version byte and CRC-32,
//! * [`proto`] — the shard control messages ([`ShardRequest`] /
//!   [`ShardReply`]) and the self-contained [`ShardSpec`],
//! * [`transport`] — Unix-domain sockets with a TCP loopback fallback,
//!   with per-connection read/write deadlines,
//! * [`fault`] — deterministic, [`FaultPlan`]-scripted fault injection
//!   ([`ChaosConn`] drops/delays/truncates/corrupts scripted frames) so
//!   the supervisor's recovery paths are tested, not hoped for,
//! * [`plan`] — [`ShardPlan`]: partition the graph, slice propagation
//!   rows, build the halo-exchange routing map,
//! * [`worker`] — the [`ShardWorker`] state machine plus the socket loop
//!   and CLI entry point worker binaries delegate to.
//!
//! The router side (scatter requests, relay halo activations, gather and
//! reduce results) lives in `gcod-serve`, next to the single-process
//! serving path it is bit-identical to.
//!
//! # Bit-identity
//!
//! Sharded inference reproduces the single-process forward pass *exactly*
//! (same f32 bits), because the plan slices the full-graph propagation
//! matrix (degrees are whole-graph), keeps local node orderings sorted by
//! global id (monotone column remap ⇒ identical accumulation order), and
//! each worker mirrors `GnnModel::forward`'s per-layer operation sequence
//! via `gcod_nn::layers::shard_layer_forward`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod fault;
pub mod frame;
pub mod plan;
pub mod proto;
pub mod transport;
pub mod wire;
pub mod worker;

pub use error::{Result, ShardError};
pub use fault::{ChaosConn, FaultAction, FaultEntry, FaultPlan};
pub use frame::{crc32, read_frame, write_frame, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use plan::{ShardPlan, ShardPlanConfig};
pub use proto::{ShardReply, ShardRequest, ShardSpec};
pub use transport::{ShardAddr, ShardConn, ShardListener, TransportKind};
pub use wire::{Wire, WireError, WireReader, WireResult};
pub use worker::{run as run_worker, worker_main, ShardWorker};
