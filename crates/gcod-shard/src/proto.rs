//! Shard control messages and the self-contained shard description.
//!
//! The router drives a synchronous request/reply protocol; every message
//! is one [frame](crate::frame). Per inference the exchange is:
//!
//! ```text
//! router                                   worker (one per shard)
//!   |  <- Hello{shard}                        (on connect)
//!   |  Load(ShardSpec) ->                     (once)
//!   |  <- Loaded{owned, halo}
//!   |  RunLayer{layer: 0} ->                  (resets h from features)
//!   |  <- LayerDone{exports}                  (boundary rows other shards need)
//!   |  Advance{halo} ->                       (halo rows gathered from peers)
//!   |  <- Advanced
//!   |  ... RunLayer / Advance per layer ...
//!   |  Gather{rows} ->                        (after the final layer)
//!   |  <- Rows(tensor)
//!   |  Shutdown ->
//!   |  <- Bye
//! ```

use gcod_graph::CsrMatrix;
use gcod_nn::layers::DenseLayer;
use gcod_nn::Tensor;

use crate::wire::{Wire, WireError, WireReader, WireResult};

/// Everything one worker needs to serve its shard, shipped once at load
/// time. All indices are *local* (positions in the shard's node ordering)
/// except where noted; the router keeps the global↔local maps.
///
/// A shard's local node ordering is `sorted(owned ∪ halo)` by global id —
/// a monotone remap, so sliced propagation rows keep their columns sorted
/// and f32 accumulation order matches the single-process path bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// This shard's id in `0..num_shards`.
    pub shard_id: u32,
    /// Total shard count in the plan.
    pub num_shards: u32,
    /// Dense layers of the model, in forward order (weights are
    /// replicated on every shard; only node state is partitioned).
    pub layers: Vec<DenseLayer>,
    /// Whether the model applies residual connections (layer index > 0,
    /// matching dimensions), mirroring `GnnModel::forward`.
    pub residual: bool,
    /// Propagation rows of the *owned* nodes over local columns:
    /// `|owned| x (|owned| + |halo|)`, sliced (not renormalised) from the
    /// full-graph propagation matrix.
    pub prop: CsrMatrix,
    /// Input features for every local node: `(|owned| + |halo|) x f`.
    pub features: Tensor,
    /// Positions of owned nodes within the local ordering, ascending.
    pub owned_pos: Vec<u32>,
    /// Positions of halo nodes within the local ordering, in the same
    /// order the router ships halo rows in [`ShardRequest::Advance`].
    pub halo_pos: Vec<u32>,
    /// Rows of the owned output (local owned index) to return in
    /// [`ShardReply::LayerDone`] after each non-final layer — exactly the
    /// boundary rows some other shard needs as halo input.
    pub export_rows: Vec<u32>,
}

impl ShardSpec {
    /// Number of nodes this shard owns.
    pub fn owned_count(&self) -> usize {
        self.owned_pos.len()
    }

    /// Number of halo (replicated boundary) nodes this shard reads.
    pub fn halo_count(&self) -> usize {
        self.halo_pos.len()
    }

    /// Total local nodes (owned + halo).
    pub fn local_count(&self) -> usize {
        self.owned_pos.len() + self.halo_pos.len()
    }
}

impl Wire for ShardSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard_id.encode(out);
        self.num_shards.encode(out);
        self.layers.encode(out);
        self.residual.encode(out);
        self.prop.encode(out);
        self.features.encode(out);
        self.owned_pos.encode(out);
        self.halo_pos.encode(out);
        self.export_rows.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(ShardSpec {
            shard_id: u32::decode(r)?,
            num_shards: u32::decode(r)?,
            layers: Vec::decode(r)?,
            residual: bool::decode(r)?,
            prop: CsrMatrix::decode(r)?,
            features: Tensor::decode(r)?,
            owned_pos: Vec::decode(r)?,
            halo_pos: Vec::decode(r)?,
            export_rows: Vec::decode(r)?,
        })
    }
}

/// Router → worker control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardRequest {
    /// Liveness probe; the worker answers [`ShardReply::Pong`].
    Ping,
    /// Ship the shard description; the worker answers
    /// [`ShardReply::Loaded`] (boxed: a spec embeds whole tensors).
    Load(Box<ShardSpec>),
    /// Run one layer of the partial forward over owned rows. `layer == 0`
    /// implicitly resets local activations from the stored features.
    RunLayer {
        /// Layer index in `0..layers.len()`.
        layer: u32,
    },
    /// Deliver halo activations for the next layer: one row per entry of
    /// `halo_pos`, in that order.
    Advance {
        /// `|halo| x d` activations gathered from owning shards.
        halo: Tensor,
    },
    /// Fetch owned output rows after the final layer.
    Gather {
        /// Local owned indices (`0..owned_count`) to return, in order.
        rows: Vec<u32>,
    },
    /// Orderly shutdown; the worker answers [`ShardReply::Bye`] and
    /// closes the connection.
    Shutdown,
}

impl Wire for ShardRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ShardRequest::Ping => 0u8.encode(out),
            ShardRequest::Load(spec) => {
                1u8.encode(out);
                spec.encode(out);
            }
            ShardRequest::RunLayer { layer } => {
                2u8.encode(out);
                layer.encode(out);
            }
            ShardRequest::Advance { halo } => {
                3u8.encode(out);
                halo.encode(out);
            }
            ShardRequest::Gather { rows } => {
                4u8.encode(out);
                rows.encode(out);
            }
            ShardRequest::Shutdown => 5u8.encode(out),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match u8::decode(r)? {
            0 => Ok(ShardRequest::Ping),
            1 => Ok(ShardRequest::Load(Box::new(ShardSpec::decode(r)?))),
            2 => Ok(ShardRequest::RunLayer {
                layer: u32::decode(r)?,
            }),
            3 => Ok(ShardRequest::Advance {
                halo: Tensor::decode(r)?,
            }),
            4 => Ok(ShardRequest::Gather {
                rows: Vec::decode(r)?,
            }),
            5 => Ok(ShardRequest::Shutdown),
            tag => Err(WireError::UnknownTag {
                context: "ShardRequest",
                tag,
            }),
        }
    }
}

/// Worker → router replies.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardReply {
    /// First message after connecting: which shard this worker serves.
    Hello {
        /// Shard id the worker was launched for.
        shard: u32,
    },
    /// Answer to [`ShardRequest::Ping`].
    Pong,
    /// Shard loaded and validated.
    Loaded {
        /// Owned node count, echoed for cross-checking.
        owned: u32,
        /// Halo node count, echoed for cross-checking.
        halo: u32,
    },
    /// Layer finished; carries the export rows
    /// (`|export_rows| x d_out`) other shards need as halo input.
    LayerDone {
        /// Boundary activations in `export_rows` order.
        exports: Tensor,
    },
    /// Halo activations installed; ready for the next layer.
    Advanced,
    /// Answer to [`ShardRequest::Gather`]: requested owned output rows.
    Rows(Tensor),
    /// Orderly shutdown acknowledgement.
    Bye,
    /// The worker hit an error serving the previous request. The
    /// connection stays usable; state may need a fresh `RunLayer{0}`.
    Err {
        /// Human-readable failure description.
        message: String,
    },
}

impl Wire for ShardReply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ShardReply::Hello { shard } => {
                0u8.encode(out);
                shard.encode(out);
            }
            ShardReply::Pong => 1u8.encode(out),
            ShardReply::Loaded { owned, halo } => {
                2u8.encode(out);
                owned.encode(out);
                halo.encode(out);
            }
            ShardReply::LayerDone { exports } => {
                3u8.encode(out);
                exports.encode(out);
            }
            ShardReply::Advanced => 4u8.encode(out),
            ShardReply::Rows(rows) => {
                5u8.encode(out);
                rows.encode(out);
            }
            ShardReply::Bye => 6u8.encode(out),
            ShardReply::Err { message } => {
                7u8.encode(out);
                message.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match u8::decode(r)? {
            0 => Ok(ShardReply::Hello {
                shard: u32::decode(r)?,
            }),
            1 => Ok(ShardReply::Pong),
            2 => Ok(ShardReply::Loaded {
                owned: u32::decode(r)?,
                halo: u32::decode(r)?,
            }),
            3 => Ok(ShardReply::LayerDone {
                exports: Tensor::decode(r)?,
            }),
            4 => Ok(ShardReply::Advanced),
            5 => Ok(ShardReply::Rows(Tensor::decode(r)?)),
            6 => Ok(ShardReply::Bye),
            7 => Ok(ShardReply::Err {
                message: String::decode(r)?,
            }),
            tag => Err(WireError::UnknownTag {
                context: "ShardReply",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_nn::layers::Activation;

    fn tiny_spec() -> ShardSpec {
        ShardSpec {
            shard_id: 1,
            num_shards: 2,
            layers: vec![DenseLayer {
                weight: Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).expect("weight"),
                bias: Tensor::from_vec(1, 2, vec![0.1, -0.1]).expect("bias"),
                activation: Activation::Relu,
            }],
            residual: true,
            prop: CsrMatrix::from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![0.5, 0.5, 1.0])
                .expect("prop"),
            features: Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).expect("feat"),
            owned_pos: vec![0, 2],
            halo_pos: vec![1],
            export_rows: vec![0],
        }
    }

    #[test]
    fn spec_roundtrips_and_counts() {
        let spec = tiny_spec();
        assert_eq!(spec.owned_count(), 2);
        assert_eq!(spec.halo_count(), 1);
        assert_eq!(spec.local_count(), 3);
        let back = ShardSpec::from_wire(&spec.to_wire()).expect("roundtrip");
        assert_eq!(back, spec);
    }

    #[test]
    fn every_request_variant_roundtrips() {
        let variants = vec![
            ShardRequest::Ping,
            ShardRequest::Load(Box::new(tiny_spec())),
            ShardRequest::RunLayer { layer: 3 },
            ShardRequest::Advance {
                halo: Tensor::from_vec(1, 2, vec![7.0, 8.0]).expect("halo"),
            },
            ShardRequest::Gather { rows: vec![0, 1] },
            ShardRequest::Shutdown,
        ];
        for msg in variants {
            let back = ShardRequest::from_wire(&msg.to_wire()).expect("roundtrip");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn every_reply_variant_roundtrips() {
        let variants = vec![
            ShardReply::Hello { shard: 4 },
            ShardReply::Pong,
            ShardReply::Loaded { owned: 10, halo: 3 },
            ShardReply::LayerDone {
                exports: Tensor::from_vec(1, 1, vec![2.5]).expect("exports"),
            },
            ShardReply::Advanced,
            ShardReply::Rows(Tensor::zeros(2, 2)),
            ShardReply::Bye,
            ShardReply::Err {
                message: "shard 1: no shard loaded".to_string(),
            },
        ];
        for msg in variants {
            let back = ShardReply::from_wire(&msg.to_wire()).expect("roundtrip");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        let err = ShardRequest::from_wire(&[99]).expect_err("must reject");
        assert_eq!(
            err,
            WireError::UnknownTag {
                context: "ShardRequest",
                tag: 99
            }
        );
        let err = ShardReply::from_wire(&[200]).expect_err("must reject");
        assert_eq!(
            err,
            WireError::UnknownTag {
                context: "ShardReply",
                tag: 200
            }
        );
    }
}
