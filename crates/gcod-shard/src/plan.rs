//! Shard planning: turn one graph + model into `k` self-contained
//! [`ShardSpec`]s plus the halo-exchange routing map.
//!
//! The plan is built once by the router and guarantees **bit-identical**
//! results versus the single-process forward pass:
//!
//! * The full-graph propagation matrix is computed once (symmetric
//!   normalisation needs whole-graph degrees) and its *rows* are sliced
//!   per shard — never renormalised per shard.
//! * A shard's local node ordering is `sorted(owned ∪ halo)` by global
//!   id. The global→local column remap is therefore monotone, so sliced
//!   CSR rows keep sorted columns and the f32 accumulation order inside
//!   each SpMM row is exactly the single-process order.
//! * Model weights are replicated to every shard; only node state is
//!   partitioned (the BNS-GCN decomposition).
//!
//! One GCN layer reads exactly the 1-hop neighbourhood, so the halo of a
//! shard is the set of out-of-shard propagation columns of its owned
//! rows — the ≤1-hop boundary closure, refreshed between layers by the
//! halo exchange.

use gcod_graph::{Graph, PartitionConfig, Partitioner, Partitioning};
use gcod_nn::models::GnnModel;
use gcod_nn::Tensor;

use crate::error::{Result, ShardError};
use crate::proto::ShardSpec;

/// Parameters for building a [`ShardPlan`].
#[derive(Debug, Clone)]
pub struct ShardPlanConfig {
    /// Number of shards (OS processes / worker threads) to plan for.
    pub shards: usize,
    /// Graph partitioner configuration; `parts` is overridden with
    /// `shards`.
    pub partition: PartitionConfig,
}

impl ShardPlanConfig {
    /// Plan for `shards` shards with default partitioner settings.
    pub fn new(shards: usize) -> Self {
        ShardPlanConfig {
            shards,
            partition: PartitionConfig::k_way(shards),
        }
    }
}

/// One shard's slice of the plan: the shippable spec plus the global-id
/// bookkeeping the router needs for halo exchange and result gathering.
#[derive(Debug, Clone)]
struct PlanShard {
    /// Ready-to-send worker payload.
    spec: ShardSpec,
    /// Global ids of owned nodes, ascending.
    owned: Vec<usize>,
    /// Global ids of halo nodes, ascending (= local order of halo rows).
    halo: Vec<usize>,
    /// Global ids this shard exports after every non-final layer,
    /// ascending; parallel to `spec.export_rows`.
    export_nodes: Vec<usize>,
    /// Per halo node (in `halo` order): which shard owns it and the index
    /// of its row inside that shard's `LayerDone` export tensor.
    halo_sources: Vec<(u32, u32)>,
}

/// A complete sharding of one served model.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: Vec<PlanShard>,
    partitioning: Partitioning,
    num_layers: usize,
    num_nodes: usize,
    feature_dim: usize,
    output_dim: usize,
}

impl ShardPlan {
    /// Build a plan sharding `model` over `graph` into
    /// `config.shards` pieces.
    ///
    /// # Errors
    ///
    /// * [`ShardError::Unsupported`] for feature-dependent propagation
    ///   (attention scores need whole-graph state per layer).
    /// * [`ShardError::InvalidConfig`] for zero shards, more shards than
    ///   nodes, or a partition that leaves a shard empty.
    /// * Graph/model errors are passed through.
    pub fn build(graph: &Graph, model: &GnnModel, config: &ShardPlanConfig) -> Result<ShardPlan> {
        let n = graph.num_nodes();
        if config.shards == 0 {
            return Err(ShardError::InvalidConfig {
                context: "shard count must be at least 1".to_string(),
            });
        }
        if config.shards > n {
            return Err(ShardError::InvalidConfig {
                context: format!("{} shards requested for {n} nodes", config.shards),
            });
        }
        let rule = model.config().propagation();
        if rule.is_feature_dependent() {
            return Err(ShardError::Unsupported {
                context: format!(
                    "propagation {rule:?} recomputes edge weights from whole-graph \
                     features every layer and cannot be row-sliced"
                ),
            });
        }

        let features = Tensor::from_vec(n, graph.feature_dim(), graph.features().to_vec())?;
        // Full-graph propagation, computed exactly as GnnModel::forward
        // does; shards receive row slices of this matrix.
        let full_prop = rule.matrix(graph, &features);

        let mut part_config = config.partition;
        part_config.parts = config.shards;
        let partitioning = Partitioner::new(part_config).partition(graph.adjacency())?;
        let assignment = partitioning.assignment();

        let k = config.shards;
        let mut owned_by_shard: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (node, &p) in assignment.iter().enumerate() {
            owned_by_shard[p as usize].push(node);
        }
        if let Some(empty) = owned_by_shard.iter().position(Vec::is_empty) {
            return Err(ShardError::InvalidConfig {
                context: format!("partition left shard {empty} empty; use fewer shards"),
            });
        }

        // Halo of shard s: out-of-shard columns referenced by its owned
        // propagation rows (the 1-hop boundary closure).
        let mut halo_by_shard: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut seen = vec![usize::MAX; n];
        for (s, owned) in owned_by_shard.iter().enumerate() {
            for &node in owned {
                let (cols, _) = full_prop.row(node);
                for &c in cols {
                    let c = c as usize;
                    if assignment[c] as usize != s && seen[c] != s {
                        seen[c] = s;
                        halo_by_shard[s].push(c);
                    }
                }
            }
            halo_by_shard[s].sort_unstable();
        }

        // Export set of shard s: owned nodes some other shard needs as
        // halo. `export_rows` are their ranks in the owned ordering.
        let mut is_export = vec![false; n];
        for halo in &halo_by_shard {
            for &g in halo {
                is_export[g] = true;
            }
        }
        let export_nodes_by_shard: Vec<Vec<usize>> = owned_by_shard
            .iter()
            .map(|owned| owned.iter().copied().filter(|&g| is_export[g]).collect())
            .collect();

        let mut shards = Vec::with_capacity(k);
        for s in 0..k {
            let owned = &owned_by_shard[s];
            let halo = &halo_by_shard[s];

            // Merge the two sorted, disjoint id sets into the local
            // ordering, recording each side's positions.
            let mut locals = Vec::with_capacity(owned.len() + halo.len());
            let mut owned_pos = Vec::with_capacity(owned.len());
            let mut halo_pos = Vec::with_capacity(halo.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < owned.len() || j < halo.len() {
                let take_owned = match (owned.get(i), halo.get(j)) {
                    (Some(&o), Some(&h)) => o < h,
                    (Some(_), None) => true,
                    _ => false,
                };
                if take_owned {
                    owned_pos.push(locals.len() as u32);
                    locals.push(owned[i]);
                    i += 1;
                } else {
                    halo_pos.push(locals.len() as u32);
                    locals.push(halo[j]);
                    j += 1;
                }
            }

            let prop = full_prop.submatrix(owned, &locals);
            let shard_features = features.gather_rows(&locals)?;

            // Rank of each export node inside the owned ordering.
            let export_rows: Vec<u32> = export_nodes_by_shard[s]
                .iter()
                .map(|g| {
                    owned.binary_search(g).map(|rank| rank as u32).map_err(|_| {
                        ShardError::InvalidConfig {
                            context: format!("export node {g} not owned by shard {s}"),
                        }
                    })
                })
                .collect::<Result<_>>()?;

            // Where each halo row comes from: owning shard + its index in
            // that shard's export tensor.
            let halo_sources: Vec<(u32, u32)> = halo
                .iter()
                .map(|&g| {
                    let owner = assignment[g] as usize;
                    export_nodes_by_shard[owner]
                        .binary_search(&g)
                        .map(|idx| (owner as u32, idx as u32))
                        .map_err(|_| ShardError::InvalidConfig {
                            context: format!("halo node {g} missing from shard {owner} exports"),
                        })
                })
                .collect::<std::result::Result<_, _>>()?;

            shards.push(PlanShard {
                spec: ShardSpec {
                    shard_id: s as u32,
                    num_shards: k as u32,
                    layers: model.layers().to_vec(),
                    residual: model.config().residual,
                    prop,
                    features: shard_features,
                    owned_pos,
                    halo_pos,
                    export_rows,
                },
                owned: owned.clone(),
                halo: halo.clone(),
                export_nodes: export_nodes_by_shard[s].clone(),
                halo_sources,
            });
        }

        let output_dim = model
            .config()
            .layer_dims()
            .last()
            .map(|&(_, out)| out)
            .unwrap_or(0);
        Ok(ShardPlan {
            shards,
            partitioning,
            num_layers: model.layers().len(),
            num_nodes: n,
            feature_dim: graph.feature_dim(),
            output_dim,
        })
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of model layers each worker runs.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Total nodes in the planned graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Input feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Output dimension of the final layer.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The underlying graph partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Shippable spec of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn spec(&self, shard: usize) -> &ShardSpec {
        &self.shards[shard].spec
    }

    /// Global ids owned by one shard, ascending.
    pub fn owned(&self, shard: usize) -> &[usize] {
        &self.shards[shard].owned
    }

    /// Global ids of one shard's halo, ascending.
    pub fn halo(&self, shard: usize) -> &[usize] {
        &self.shards[shard].halo
    }

    /// Per halo row of `shard`: `(owner shard, index into the owner's
    /// export tensor)`.
    pub fn halo_sources(&self, shard: usize) -> &[(u32, u32)] {
        &self.shards[shard].halo_sources
    }

    /// Global ids one shard exports after every non-final layer.
    pub fn export_nodes(&self, shard: usize) -> &[usize] {
        &self.shards[shard].export_nodes
    }

    /// Total halo nodes across all shards (replication overhead).
    pub fn total_halo_nodes(&self) -> usize {
        self.shards.iter().map(|s| s.halo.len()).sum()
    }

    /// Locate a global node: `(owning shard, rank in its owned
    /// ordering)`.
    ///
    /// # Errors
    ///
    /// [`ShardError::InvalidConfig`] if `node` is out of range.
    pub fn locate(&self, node: usize) -> Result<(usize, usize)> {
        if node >= self.num_nodes {
            return Err(ShardError::InvalidConfig {
                context: format!("node {node} out of range ({} nodes)", self.num_nodes),
            });
        }
        let shard = self.partitioning.part_of(node);
        let rank = self.shards[shard].owned.binary_search(&node).map_err(|_| {
            ShardError::InvalidConfig {
                context: format!("node {node} not found in shard {shard} owned set"),
            }
        })?;
        Ok((shard, rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;

    fn small_graph() -> Graph {
        GraphGenerator::new(11)
            .generate(&DatasetProfile::custom("plan", 160, 550, 12, 4))
            .expect("graph")
    }

    fn trained_model(graph: &Graph) -> GnnModel {
        GnnModel::new(ModelConfig::gcn(graph), 7).expect("model")
    }

    #[test]
    fn plan_covers_all_nodes_disjointly() {
        let graph = small_graph();
        let model = trained_model(&graph);
        let plan = ShardPlan::build(&graph, &model, &ShardPlanConfig::new(4)).expect("plan");
        assert_eq!(plan.shards(), 4);
        let mut owner_count = vec![0usize; graph.num_nodes()];
        for s in 0..plan.shards() {
            for &g in plan.owned(s) {
                owner_count[g] += 1;
            }
            assert!(plan.owned(s).windows(2).all(|w| w[0] < w[1]));
            assert!(plan.halo(s).windows(2).all(|w| w[0] < w[1]));
        }
        assert!(owner_count.iter().all(|&c| c == 1), "every node owned once");
    }

    #[test]
    fn specs_are_consistent_with_bookkeeping() {
        let graph = small_graph();
        let model = trained_model(&graph);
        let plan = ShardPlan::build(&graph, &model, &ShardPlanConfig::new(2)).expect("plan");
        for s in 0..plan.shards() {
            let spec = plan.spec(s);
            assert_eq!(spec.shard_id as usize, s);
            assert_eq!(spec.owned_count(), plan.owned(s).len());
            assert_eq!(spec.halo_count(), plan.halo(s).len());
            assert_eq!(spec.prop.rows(), spec.owned_count());
            assert_eq!(spec.prop.cols(), spec.local_count());
            assert_eq!(spec.features.rows(), spec.local_count());
            assert_eq!(spec.features.cols(), graph.feature_dim());
            assert_eq!(spec.export_rows.len(), plan.export_nodes(s).len());
            // Halo sources point at real export slots of the owner.
            for (&g, &(owner, idx)) in plan.halo(s).iter().zip(plan.halo_sources(s)) {
                assert_eq!(plan.partitioning().part_of(g), owner as usize);
                assert_eq!(plan.export_nodes(owner as usize)[idx as usize], g);
            }
        }
    }

    #[test]
    fn sliced_features_match_global_rows() {
        let graph = small_graph();
        let model = trained_model(&graph);
        let plan = ShardPlan::build(&graph, &model, &ShardPlanConfig::new(2)).expect("plan");
        let f = graph.feature_dim();
        for s in 0..plan.shards() {
            let spec = plan.spec(s);
            // Reconstruct the local ordering from owned/halo positions.
            let mut locals = vec![usize::MAX; spec.local_count()];
            for (rank, &pos) in spec.owned_pos.iter().enumerate() {
                locals[pos as usize] = plan.owned(s)[rank];
            }
            for (rank, &pos) in spec.halo_pos.iter().enumerate() {
                locals[pos as usize] = plan.halo(s)[rank];
            }
            assert!(locals.windows(2).all(|w| w[0] < w[1]), "locals ascending");
            for (local, &g) in locals.iter().enumerate() {
                assert_eq!(
                    spec.features.row(local),
                    &graph.features()[g * f..(g + 1) * f],
                    "feature row of global node {g}"
                );
            }
        }
    }

    #[test]
    fn single_shard_plan_has_no_halo() {
        let graph = small_graph();
        let model = trained_model(&graph);
        let plan = ShardPlan::build(&graph, &model, &ShardPlanConfig::new(1)).expect("plan");
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.total_halo_nodes(), 0);
        assert!(plan.export_nodes(0).is_empty());
        assert_eq!(plan.owned(0).len(), graph.num_nodes());
    }

    #[test]
    fn locate_agrees_with_ownership() {
        let graph = small_graph();
        let model = trained_model(&graph);
        let plan = ShardPlan::build(&graph, &model, &ShardPlanConfig::new(2)).expect("plan");
        for node in 0..graph.num_nodes() {
            let (shard, rank) = plan.locate(node).expect("locate");
            assert_eq!(plan.owned(shard)[rank], node);
        }
        assert!(plan.locate(graph.num_nodes()).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let graph = small_graph();
        let model = trained_model(&graph);
        assert!(matches!(
            ShardPlan::build(&graph, &model, &ShardPlanConfig::new(0)),
            Err(ShardError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ShardPlan::build(&graph, &model, &ShardPlanConfig::new(graph.num_nodes() + 1)),
            Err(ShardError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn attention_models_are_unsupported() {
        let graph = small_graph();
        let model = GnnModel::new(ModelConfig::gat(&graph), 7).expect("model");
        assert!(matches!(
            ShardPlan::build(&graph, &model, &ShardPlanConfig::new(2)),
            Err(ShardError::Unsupported { .. })
        ));
    }
}
