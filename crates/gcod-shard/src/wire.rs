//! Hand-rolled binary serialisation for everything that crosses a shard
//! socket.
//!
//! The repo's vendored `serde` shim derives metadata but has no real
//! serialiser, and the whole point of this crate is a **zero-dependency**
//! wire protocol, so encoding is written out by hand: little-endian fixed
//! width integers, `u32` length prefixes for sequences, and one tag byte
//! per enum variant. Decoding is fully defensive — every malformed input
//! maps to a typed [`WireError`], never a panic, because frames arrive
//! from another process.
//!
//! Layout conventions:
//!
//! | type        | encoding                                            |
//! |-------------|-----------------------------------------------------|
//! | `bool`      | one byte, `0` or `1`                                |
//! | `u8`..`u64` | little-endian, fixed width                          |
//! | `usize`     | as `u64` (decode fails if it overflows the target)  |
//! | `f32`/`f64` | IEEE-754 bits, little-endian                        |
//! | `String`    | `u32` byte length + UTF-8 bytes                     |
//! | `Vec<T>`    | `u32` element count + elements                      |
//! | enums       | `u8` variant tag + fields in declaration order      |

use std::fmt;

use gcod_graph::CsrMatrix;
use gcod_nn::layers::{Activation, DenseLayer};
use gcod_nn::Tensor;
use gcod_platform::energy::EnergyBreakdown;
use gcod_platform::memory::TrafficCounter;
use gcod_platform::report::PerfReport;

/// Errors produced while decoding (or framing) wire data.
///
/// Every variant is a *rejection*, not a crash: corrupt or truncated input
/// from a peer must surface as an `Err`, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a field could be fully read.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A frame carried an unknown protocol version byte.
    BadVersion {
        /// Version byte found on the wire.
        got: u8,
        /// Version this build speaks.
        expected: u8,
    },
    /// The frame checksum did not match the received payload.
    BadChecksum {
        /// Checksum recomputed over the received bytes.
        expected: u32,
        /// Checksum carried by the frame.
        got: u32,
    },
    /// An enum tag byte did not match any known variant.
    UnknownTag {
        /// Type being decoded.
        context: &'static str,
        /// Offending tag byte.
        tag: u8,
    },
    /// A frame header announced a length above [`crate::MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Announced body length.
        len: u64,
        /// Maximum this build accepts.
        max: u64,
    },
    /// A frame decoded cleanly but left unconsumed payload bytes behind.
    TrailingBytes {
        /// Number of leftover bytes.
        remaining: usize,
    },
    /// The bytes were structurally readable but semantically invalid
    /// (bad UTF-8, inconsistent matrix dimensions, ...).
    Malformed {
        /// Human-readable description of the violation.
        context: String,
    },
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// A socket read/write deadline expired before the frame completed.
    ///
    /// Distinct from [`WireError::Io`] so supervisors can tell a wedged
    /// (but possibly alive) peer from a broken transport: after a timeout
    /// the stream may hold a partially transferred frame, so the safe
    /// recovery is a heartbeat probe and, failing that, a reconnect.
    TimedOut {
        /// What the caller was doing when the deadline expired.
        context: String,
    },
    /// An I/O error from the underlying socket.
    Io {
        /// Stringified `std::io::Error`.
        context: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => write!(
                f,
                "truncated wire data: needed {needed} more bytes, {available} available"
            ),
            WireError::BadVersion { got, expected } => {
                write!(f, "bad protocol version {got} (expected {expected})")
            }
            WireError::BadChecksum { expected, got } => write!(
                f,
                "frame checksum mismatch: computed {expected:#010x}, frame carried {got:#010x}"
            ),
            WireError::UnknownTag { context, tag } => {
                write!(f, "unknown tag {tag} while decoding {context}")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoding frame payload")
            }
            WireError::Malformed { context } => write!(f, "malformed wire data: {context}"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::TimedOut { context } => {
                write!(f, "socket deadline expired: {context}")
            }
            WireError::Io { context } => write!(f, "socket i/o error: {context}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire operations.
pub type WireResult<T> = std::result::Result<T, WireError>;

/// A cursor over a received payload.
///
/// All decoding goes through this reader so bounds checks live in one
/// place; running off the end yields [`WireError::Truncated`].
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wrap a payload slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` bytes, or fail with `Truncated`.
    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take_array<const N: usize>(&mut self) -> WireResult<[u8; N]> {
        let bytes = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }
}

/// Types that can be written to and read back from the wire.
///
/// `decode` must be total: any byte sequence either decodes or returns a
/// typed [`WireError`]. Implementations must round-trip
/// (`decode(encode(x)) == x`) — pinned by the proptest suite in
/// `tests/wire_roundtrip.rs`.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader, advancing it.
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self>;

    /// Convenience: encode into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decode from a complete buffer, rejecting leftovers.
    fn from_wire(buf: &[u8]) -> WireResult<Self> {
        let mut r = WireReader::new(buf);
        let value = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(value)
    }
}

macro_rules! wire_int {
    ($($ty:ty),*) => {$(
        impl Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
                Ok(<$ty>::from_le_bytes(r.take_array()?))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i64);

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let raw = u64::decode(r)?;
        usize::try_from(raw).map_err(|_| WireError::Malformed {
            context: format!("u64 value {raw} does not fit usize on this platform"),
        })
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag {
                context: "bool",
                tag,
            }),
        }
    }
}

impl Wire for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(f32::from_bits(u32::decode(r)?))
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

/// Decode a `u32` length prefix, guarding against allocation bombs: the
/// claimed count must not exceed the bytes actually remaining (every
/// element encodes to at least one byte).
fn decode_len(r: &mut WireReader<'_>, context: &'static str) -> WireResult<usize> {
    let len = u32::decode(r)? as usize;
    if len > r.remaining() {
        return Err(WireError::Malformed {
            context: format!(
                "{context}: claimed length {len} exceeds {} remaining payload bytes",
                r.remaining()
            ),
        });
    }
    Ok(len)
}

fn encode_len(len: usize, out: &mut Vec<u8>) {
    debug_assert!(len <= u32::MAX as usize, "sequence too long for the wire");
    (len as u32).encode(out);
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let len = decode_len(r, "String")?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed {
            context: "String: invalid UTF-8".to_string(),
        })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let len = decode_len(r, "Vec")?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Wire for Tensor {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.rows() as u32).encode(out);
        (self.cols() as u32).encode(out);
        for &v in self.data() {
            v.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let rows = u32::decode(r)? as usize;
        let cols = u32::decode(r)? as usize;
        let total = rows.checked_mul(cols).ok_or_else(|| WireError::Malformed {
            context: format!("Tensor: {rows}x{cols} element count overflows"),
        })?;
        // Cheap pre-check before allocating: every f32 needs 4 bytes.
        if total > r.remaining() / 4 {
            return Err(WireError::Truncated {
                needed: total * 4,
                available: r.remaining(),
            });
        }
        let mut data = Vec::with_capacity(total);
        for _ in 0..total {
            data.push(f32::decode(r)?);
        }
        Tensor::from_vec(rows, cols, data).map_err(|e| WireError::Malformed {
            context: format!("Tensor: {e}"),
        })
    }
}

impl Wire for CsrMatrix {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.rows() as u32).encode(out);
        (self.cols() as u32).encode(out);
        self.indptr().to_vec().encode(out);
        self.indices().to_vec().encode(out);
        self.values().to_vec().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let rows = u32::decode(r)? as usize;
        let cols = u32::decode(r)? as usize;
        let indptr = Vec::<u64>::decode(r)?;
        let indices = Vec::<u32>::decode(r)?;
        let values = Vec::<f32>::decode(r)?;
        // `from_parts` re-validates every CSR invariant (monotone indptr,
        // sorted duplicate-free columns, bounds), so a hostile payload
        // cannot smuggle in a structurally broken matrix.
        CsrMatrix::from_parts(rows, cols, indptr, indices, values).map_err(|e| {
            WireError::Malformed {
                context: format!("CsrMatrix: {e}"),
            }
        })
    }
}

impl Wire for Activation {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            Activation::Relu => 0,
            Activation::Linear => 1,
        };
        tag.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match u8::decode(r)? {
            0 => Ok(Activation::Relu),
            1 => Ok(Activation::Linear),
            tag => Err(WireError::UnknownTag {
                context: "Activation",
                tag,
            }),
        }
    }
}

impl Wire for DenseLayer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.weight.encode(out);
        self.bias.encode(out);
        self.activation.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let weight = Tensor::decode(r)?;
        let bias = Tensor::decode(r)?;
        let activation = Activation::decode(r)?;
        Ok(DenseLayer {
            weight,
            bias,
            activation,
        })
    }
}

impl Wire for EnergyBreakdown {
    fn encode(&self, out: &mut Vec<u8>) {
        self.compute_combination.encode(out);
        self.on_chip_combination.encode(out);
        self.off_chip_combination.encode(out);
        self.compute_aggregation.encode(out);
        self.on_chip_aggregation.encode(out);
        self.off_chip_aggregation.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(EnergyBreakdown {
            compute_combination: f64::decode(r)?,
            on_chip_combination: f64::decode(r)?,
            off_chip_combination: f64::decode(r)?,
            compute_aggregation: f64::decode(r)?,
            on_chip_aggregation: f64::decode(r)?,
            off_chip_aggregation: f64::decode(r)?,
        })
    }
}

impl Wire for TrafficCounter {
    fn encode(&self, out: &mut Vec<u8>) {
        self.off_chip_read_combination.encode(out);
        self.off_chip_write_combination.encode(out);
        self.off_chip_read_aggregation.encode(out);
        self.off_chip_write_aggregation.encode(out);
        self.on_chip_combination.encode(out);
        self.on_chip_aggregation.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(TrafficCounter {
            off_chip_read_combination: u64::decode(r)?,
            off_chip_write_combination: u64::decode(r)?,
            off_chip_read_aggregation: u64::decode(r)?,
            off_chip_write_aggregation: u64::decode(r)?,
            on_chip_combination: u64::decode(r)?,
            on_chip_aggregation: u64::decode(r)?,
        })
    }
}

impl Wire for PerfReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.platform.encode(out);
        self.dataset.encode(out);
        self.model.encode(out);
        self.latency_ms.encode(out);
        self.cycles.encode(out);
        self.off_chip_bytes.encode(out);
        self.off_chip_accesses.encode(out);
        self.peak_bandwidth_gbps.encode(out);
        self.utilization.encode(out);
        self.energy.encode(out);
        self.traffic.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(PerfReport {
            platform: String::decode(r)?,
            dataset: String::decode(r)?,
            model: String::decode(r)?,
            latency_ms: f64::decode(r)?,
            cycles: u64::decode(r)?,
            off_chip_bytes: u64::decode(r)?,
            off_chip_accesses: u64::decode(r)?,
            peak_bandwidth_gbps: f64::decode(r)?,
            utilization: f64::decode(r)?,
            energy: EnergyBreakdown::decode(r)?,
            traffic: TrafficCounter::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_wire();
        let back = T::from_wire(&bytes).expect("roundtrip decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.5f32);
        roundtrip(-0.0f64);
        roundtrip(String::from("halo"));
        roundtrip(String::new());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip((7u32, String::from("x")));
    }

    #[test]
    fn nan_payload_survives_bitwise() {
        let bits = 0x7fc0_1234u32;
        let bytes = f32::from_bits(bits).to_wire();
        let back = f32::from_wire(&bytes).expect("decode nan");
        assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn tensor_and_csr_roundtrip() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).expect("tensor");
        roundtrip(t);
        let m = CsrMatrix::from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])
            .expect("csr");
        roundtrip(m);
    }

    #[test]
    fn truncated_input_is_typed_error() {
        let bytes = 0xdead_beefu32.to_wire();
        let err = u32::from_wire(&bytes[..3]).expect_err("must reject");
        assert_eq!(
            err,
            WireError::Truncated {
                needed: 4,
                available: 3
            }
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u32.to_wire();
        bytes.push(0);
        let err = u32::from_wire(&bytes).expect_err("must reject");
        assert_eq!(err, WireError::TrailingBytes { remaining: 1 });
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        // Claims u32::MAX elements but carries 4 bytes of payload.
        let mut bytes = Vec::new();
        u32::MAX.encode(&mut bytes);
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        let err = Vec::<u64>::from_wire(&bytes).expect_err("must reject");
        assert!(matches!(err, WireError::Malformed { .. }), "got {err:?}");
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut bytes = Vec::new();
        2u32.encode(&mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let err = String::from_wire(&bytes).expect_err("must reject");
        assert!(matches!(err, WireError::Malformed { .. }));
    }

    #[test]
    fn invalid_csr_structure_rejected() {
        // Unsorted columns within a row: from_parts must refuse it.
        let m = CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(m.is_err());
        let good =
            CsrMatrix::from_parts(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).expect("valid csr");
        let mut bytes = good.to_wire();
        // Swap the two column indices in place to corrupt sortedness:
        // layout = rows(4) cols(4) indptr(4 + 2*8) indices(4 + 2*4) ...
        let idx_base = 4 + 4 + 4 + 16 + 4;
        bytes.swap(idx_base, idx_base + 4);
        let err = CsrMatrix::from_wire(&bytes).expect_err("must reject");
        assert!(matches!(err, WireError::Malformed { .. }));
    }

    #[test]
    fn perf_report_roundtrips() {
        let report = PerfReport {
            platform: "hygcn".into(),
            dataset: "cora".into(),
            model: "gcn".into(),
            latency_ms: 1.25,
            cycles: 123_456,
            off_chip_bytes: 789,
            off_chip_accesses: 10,
            peak_bandwidth_gbps: 256.0,
            utilization: 0.5,
            energy: EnergyBreakdown {
                compute_combination: 1.0,
                on_chip_combination: 2.0,
                off_chip_combination: 3.0,
                compute_aggregation: 4.0,
                on_chip_aggregation: 5.0,
                off_chip_aggregation: 6.0,
            },
            traffic: TrafficCounter {
                off_chip_read_combination: 1,
                off_chip_write_combination: 2,
                off_chip_read_aggregation: 3,
                off_chip_write_aggregation: 4,
                on_chip_combination: 5,
                on_chip_aggregation: 6,
            },
        };
        roundtrip(report);
    }
}
