//! Error type for shard planning, transport, and the worker protocol.

use std::fmt;

use crate::wire::WireError;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ShardError>;

/// Everything that can go wrong while planning, shipping, or serving a
/// shard.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ShardError {
    /// Encoding, framing, or transport-level decode failure.
    Wire(WireError),
    /// The model or configuration cannot be sharded (e.g. feature-
    /// dependent propagation such as attention needs whole-graph state).
    Unsupported {
        /// What was requested and why it cannot shard.
        context: String,
    },
    /// Invalid shard plan parameters (zero shards, more shards than
    /// nodes, ...).
    InvalidConfig {
        /// Description of the rejected parameter.
        context: String,
    },
    /// A worker reported an error serving a request.
    Worker {
        /// Shard id of the failing worker.
        shard: u32,
        /// Worker-supplied failure description.
        message: String,
    },
    /// The peer sent a structurally valid message that violates the
    /// protocol state machine (e.g. `Pong` when `Loaded` was expected).
    Protocol {
        /// What was expected vs. received.
        context: String,
    },
    /// Failed to spawn or connect a worker (process or thread).
    Spawn {
        /// Description of the spawn/connect failure.
        context: String,
    },
    /// Underlying graph error while building the plan.
    Graph(gcod_graph::GraphError),
    /// Underlying tensor/model error while building or running a shard.
    Nn(gcod_nn::NnError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ShardError::Unsupported { context } => write!(f, "unsupported for sharding: {context}"),
            ShardError::InvalidConfig { context } => write!(f, "invalid shard config: {context}"),
            ShardError::Worker { shard, message } => {
                write!(f, "shard worker {shard} failed: {message}")
            }
            ShardError::Protocol { context } => write!(f, "shard protocol violation: {context}"),
            ShardError::Spawn { context } => write!(f, "failed to launch shard worker: {context}"),
            ShardError::Graph(e) => write!(f, "graph error while sharding: {e}"),
            ShardError::Nn(e) => write!(f, "model error while sharding: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Wire(e) => Some(e),
            ShardError::Graph(e) => Some(e),
            ShardError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ShardError {
    fn from(e: WireError) -> Self {
        ShardError::Wire(e)
    }
}

impl From<gcod_graph::GraphError> for ShardError {
    fn from(e: gcod_graph::GraphError) -> Self {
        ShardError::Graph(e)
    }
}

impl From<gcod_nn::NnError> for ShardError {
    fn from(e: gcod_nn::NnError) -> Self {
        ShardError::Nn(e)
    }
}
