//! Length-prefixed framing with a version byte and CRC-32 checksum.
//!
//! Every message on a shard socket is one frame:
//!
//! ```text
//! +----------------+---------+-----------------+----------------+
//! | u32 LE: length | u8: ver |     payload     | u32 LE: crc32  |
//! +----------------+---------+-----------------+----------------+
//!        |              \________ length ________/       |
//!        |                 (version byte included)       |
//!        +-- body length = 1 + payload bytes             |
//!                            crc32(version || payload) --+
//! ```
//!
//! The length covers the version byte plus the payload; the CRC is the
//! IEEE CRC-32 of those same bytes, so a flipped bit anywhere in the body
//! (including the version) is caught before decoding is attempted. The
//! length itself is sanity-capped at [`MAX_FRAME_LEN`] so a corrupt header
//! cannot trigger a giant allocation.

use std::io::{ErrorKind, Read, Write};

use crate::wire::{Wire, WireError, WireReader, WireResult};

/// Wire protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Maximum accepted frame body length (version byte + payload).
///
/// Large enough for a full `ShardSpec` of a Reddit-scale shard (features
/// dominate: ~60k rows x 602 f32 columns is ~145 MB), small enough to
/// reject garbage length prefixes long before `Vec::with_capacity` hurts.
pub const MAX_FRAME_LEN: u64 = 1 << 30;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    // Reflected IEEE CRC-32 (polynomial 0xEDB88320), the classic zlib one.
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `data` (the zlib/PNG variant).
pub fn crc32(data: &[u8]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((state ^ byte as u32) & 0xFF) as usize;
        state = (state >> 8) ^ CRC_TABLE[idx];
    }
    !state
}

fn io_err(context: &str, e: std::io::Error) -> WireError {
    // Expired read/write deadlines surface as `WouldBlock` (unix sockets)
    // or `TimedOut` (TCP); both mean "deadline passed", not "transport
    // broken", and get their own typed variant so callers can probe the
    // peer instead of tearing the connection down unconditionally.
    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
        return WireError::TimedOut {
            context: format!("{context}: {e}"),
        };
    }
    WireError::Io {
        context: format!("{context}: {e}"),
    }
}

/// Encode `msg` and write it as one frame. Returns total bytes written
/// (header + body + checksum) so callers can account traffic.
pub fn write_frame<W: Write, T: Wire>(w: &mut W, msg: &T) -> WireResult<usize> {
    let mut body = Vec::with_capacity(64);
    body.push(PROTOCOL_VERSION);
    msg.encode(&mut body);
    if body.len() as u64 > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len: body.len() as u64,
            max: MAX_FRAME_LEN,
        });
    }
    let checksum = crc32(&body);
    w.write_all(&(body.len() as u32).to_le_bytes())
        .map_err(|e| io_err("write frame length", e))?;
    w.write_all(&body)
        .map_err(|e| io_err("write frame body", e))?;
    w.write_all(&checksum.to_le_bytes())
        .map_err(|e| io_err("write frame checksum", e))?;
    w.flush().map_err(|e| io_err("flush frame", e))?;
    Ok(4 + body.len() + 4)
}

/// Read one frame and decode its payload as `T`. Returns the decoded
/// message plus total bytes consumed from the stream.
///
/// A clean EOF *before* the length prefix maps to [`WireError::Closed`]
/// (the peer hung up between frames); anything else — short body, bad
/// version, checksum mismatch, decode failure, leftover payload — is the
/// corresponding typed error. Never panics on hostile input.
pub fn read_frame<R: Read, T: Wire>(r: &mut R) -> WireResult<(T, usize)> {
    let mut len_buf = [0u8; 4];
    if let Err(e) = r.read_exact(&mut len_buf) {
        return Err(if e.kind() == ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            io_err("read frame length", e)
        });
    }
    let len = u32::from_le_bytes(len_buf) as u64;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    if len == 0 {
        return Err(WireError::Malformed {
            context: "frame body length 0 (missing version byte)".to_string(),
        });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| io_err("read frame body", e))?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)
        .map_err(|e| io_err("read frame checksum", e))?;
    let got = u32::from_le_bytes(crc_buf);
    let expected = crc32(&body);
    if got != expected {
        return Err(WireError::BadChecksum { expected, got });
    }
    if body[0] != PROTOCOL_VERSION {
        return Err(WireError::BadVersion {
            got: body[0],
            expected: PROTOCOL_VERSION,
        });
    }
    let mut reader = WireReader::new(&body[1..]);
    let msg = T::decode(&mut reader)?;
    if reader.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            remaining: reader.remaining(),
        });
    }
    Ok((msg, 4 + body.len() + 4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_with_byte_accounting() {
        let mut buf = Vec::new();
        let msg = String::from("halo exchange");
        let written = write_frame(&mut buf, &msg).expect("write");
        assert_eq!(written, buf.len());
        let (back, consumed): (String, usize) = read_frame(&mut Cursor::new(&buf)).expect("read");
        assert_eq!(back, msg);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn eof_between_frames_is_closed() {
        let err = read_frame::<_, u32>(&mut Cursor::new(&[])).expect_err("must fail");
        assert_eq!(err, WireError::Closed);
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &0x1234_5678u32).expect("write");
        buf[6] ^= 0x40; // flip a payload bit
        let err = read_frame::<_, u32>(&mut Cursor::new(&buf)).expect_err("must fail");
        assert!(matches!(err, WireError::BadChecksum { .. }), "got {err:?}");
    }

    #[test]
    fn bad_version_rejected_after_checksum() {
        // Hand-build a frame with version 9 and a *valid* checksum so the
        // version check itself is exercised.
        let mut body = vec![9u8];
        0xABu8.encode(&mut body);
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        let err = read_frame::<_, u8>(&mut Cursor::new(&buf)).expect_err("must fail");
        assert_eq!(
            err,
            WireError::BadVersion {
                got: 9,
                expected: PROTOCOL_VERSION
            }
        );
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        let err = read_frame::<_, u32>(&mut Cursor::new(&buf)).expect_err("must fail");
        assert!(
            matches!(err, WireError::FrameTooLarge { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn truncated_body_is_io_not_panic() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &String::from("chopped")).expect("write");
        buf.truncate(buf.len() - 6);
        let err = read_frame::<_, String>(&mut Cursor::new(&buf)).expect_err("must fail");
        assert!(matches!(err, WireError::Io { .. }), "got {err:?}");
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut body = vec![PROTOCOL_VERSION];
        7u32.encode(&mut body);
        body.push(0xEE); // one extra byte the decoder will not consume
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        let err = read_frame::<_, u32>(&mut Cursor::new(&buf)).expect_err("must fail");
        assert_eq!(err, WireError::TrailingBytes { remaining: 1 });
    }
}
