//! Deterministic fault injection for the shard transport.
//!
//! A [`FaultPlan`] scripts exactly which frame on which shard connection
//! misbehaves and how; [`ChaosConn`] wraps a [`ShardConn`] and executes the
//! transport-level part of the script at frame granularity. Because every
//! fault is keyed by `(shard, nth frame, direction)` and plans can be
//! generated from a seed, a chaos test is fully reproducible: the same
//! plan against the same workload takes the same recovery path.
//!
//! The action set mirrors the real failure taxonomy of a socket fabric:
//!
//! | action | what the peer observes | expected recovery |
//! |---|---|---|
//! | [`FaultAction::DropSend`] / [`FaultAction::DropRecv`] | silence | deadline → heartbeat probe → retry |
//! | [`FaultAction::CorruptSend`] / [`FaultAction::CorruptRecv`] | CRC mismatch | reject frame, retry the idempotent RPC |
//! | [`FaultAction::TruncateSend`] | partial frame then EOF | reconnect/respawn |
//! | [`FaultAction::DelaySendMs`] | a late frame | absorbed, or deadline → probe |
//! | [`FaultAction::CloseAfterSend`] | EOF | reconnect/respawn |
//! | [`FaultAction::KillWorker`] | process death (supervisor-executed) | respawn + state replay |
//!
//! Corruption flips one bit *inside the frame body* (never the length
//! prefix), so the stream stays framed and the receiver's CRC-32 check —
//! not luck — is what catches the damage.

use std::io::{Read, Write};
use std::time::Duration;

use crate::frame::MAX_FRAME_LEN;
use crate::transport::ShardConn;

/// One scripted misbehaviour of the transport or the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Silently discard the Nth frame written by the router.
    DropSend,
    /// Silently discard the Nth frame read by the router.
    DropRecv,
    /// Flip one bit in the body of the Nth written frame (caught by the
    /// receiver's CRC).
    CorruptSend,
    /// Flip one bit in the body of the Nth read frame (caught by the
    /// router's CRC).
    CorruptRecv,
    /// Write only the first `keep` bytes of the Nth frame, then sever the
    /// connection — a crash mid-send.
    TruncateSend {
        /// Bytes actually written before the cut.
        keep: usize,
    },
    /// Delay the Nth written frame by this many milliseconds.
    DelaySendMs(u64),
    /// Write the Nth frame normally, then sever the connection.
    CloseAfterSend,
    /// Kill the worker before the router issues its Nth RPC to that
    /// shard. Executed by the supervisor (a transport wrapper cannot kill
    /// a process): SIGKILL for process workers, a severed socket for
    /// thread workers.
    KillWorker,
}

impl FaultAction {
    /// Whether this action intercepts frames the router *writes*.
    fn is_send(self) -> bool {
        matches!(
            self,
            FaultAction::DropSend
                | FaultAction::CorruptSend
                | FaultAction::TruncateSend { .. }
                | FaultAction::DelaySendMs(_)
                | FaultAction::CloseAfterSend
        )
    }

    /// Whether this action intercepts frames the router *reads*.
    fn is_recv(self) -> bool {
        matches!(self, FaultAction::DropRecv | FaultAction::CorruptRecv)
    }
}

/// One fault at one scripted point of one shard's connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEntry {
    /// Shard whose connection misbehaves.
    pub shard: u32,
    /// 1-based ordinal: the Nth frame in the action's direction on that
    /// connection (for [`FaultAction::KillWorker`], the Nth RPC the
    /// supervisor issues to that shard).
    pub nth: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic script of transport/worker faults.
///
/// Entries are one-shot: each fires at most once. Faults only apply to the
/// connections established at launch — a respawned worker gets a clean
/// connection, so every plan describes a *finite* amount of injected
/// trouble and recovery is always reachable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scripted faults, in no particular order.
    pub entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// An empty plan (no faults — the wrapper becomes a pass-through).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder-style: adds one scripted fault.
    #[must_use]
    pub fn with(mut self, shard: u32, nth: u64, action: FaultAction) -> Self {
        self.entries.push(FaultEntry { shard, nth, action });
        self
    }

    /// Whether the plan scripts nothing at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A reproducible pseudo-random plan of `faults` entries over `shards`
    /// connections, derived from `seed` with a xorshift64* generator (no
    /// external RNG, no wall clock — same seed, same plan, forever).
    ///
    /// Seeded plans draw from the full recoverable taxonomy: drops,
    /// corruption in both directions, small delays, and connection closes.
    /// `KillWorker` and `TruncateSend` are left to explicit scripts so a
    /// seeded sweep exercises both the retry and the respawn paths without
    /// every seed degenerating into "respawn everything".
    pub fn seeded(seed: u64, shards: u32, faults: usize) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut plan = FaultPlan::new();
        for _ in 0..faults {
            let r = next();
            let shard = (r % shards.max(1) as u64) as u32;
            let nth = 1 + (next() % 6);
            let action = match next() % 6 {
                0 => FaultAction::DropSend,
                1 => FaultAction::DropRecv,
                2 => FaultAction::CorruptSend,
                3 => FaultAction::CorruptRecv,
                4 => FaultAction::DelaySendMs(1 + next() % 3),
                _ => FaultAction::CloseAfterSend,
            };
            plan.entries.push(FaultEntry { shard, nth, action });
        }
        plan
    }

    /// Splits out the transport-level entries for one shard's connection
    /// (everything except [`FaultAction::KillWorker`]).
    pub fn transport_entries(&self, shard: u32) -> Vec<FaultEntry> {
        self.entries
            .iter()
            .filter(|e| e.shard == shard && e.action != FaultAction::KillWorker)
            .copied()
            .collect()
    }

    /// The scripted worker kills, as `(shard, nth RPC)` pairs.
    pub fn kill_entries(&self) -> Vec<(u32, u64)> {
        self.entries
            .iter()
            .filter(|e| e.action == FaultAction::KillWorker)
            .map(|e| (e.shard, e.nth))
            .collect()
    }
}

/// A [`ShardConn`] wrapper executing the transport part of a
/// [`FaultPlan`] at frame granularity.
///
/// With no scripted faults every call delegates straight to the inner
/// connection (zero-copy pass-through); with faults, writes are buffered
/// until `flush` (the frame layer writes exactly one frame per flush) and
/// reads are served whole-frame so a fault applies to a complete frame,
/// never a fragment the script did not ask for.
#[derive(Debug)]
pub struct ChaosConn {
    inner: ShardConn,
    faults: Vec<FaultEntry>,
    sent: u64,
    received: u64,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
    rpos: usize,
}

impl ChaosConn {
    /// A pass-through wrapper with no scripted faults.
    pub fn new(inner: ShardConn) -> Self {
        ChaosConn::with_faults(inner, Vec::new())
    }

    /// Wraps `inner` with this connection's scripted faults (see
    /// [`FaultPlan::transport_entries`]).
    pub fn with_faults(inner: ShardConn, faults: Vec<FaultEntry>) -> Self {
        ChaosConn {
            inner,
            faults,
            sent: 0,
            received: 0,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
            rpos: 0,
        }
    }

    /// Sets the read deadline on the underlying socket.
    ///
    /// # Errors
    ///
    /// Propagates the transport error when the OS rejects the option.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> crate::Result<()> {
        self.inner.set_read_timeout(timeout)
    }

    /// Sets the write deadline on the underlying socket.
    ///
    /// # Errors
    ///
    /// Propagates the transport error when the OS rejects the option.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> crate::Result<()> {
        self.inner.set_write_timeout(timeout)
    }

    /// Severs both directions of the underlying connection.
    pub fn shutdown_both(&self) {
        self.inner.shutdown_both();
    }

    /// Frames fully written so far (dropped frames included — the script
    /// consumed them).
    pub fn frames_sent(&self) -> u64 {
        self.sent
    }

    /// Frames fully read from the inner connection so far (dropped frames
    /// included).
    pub fn frames_received(&self) -> u64 {
        self.received
    }

    /// Removes and returns the first unfired fault matching `nth` in the
    /// given direction.
    fn take_fault(&mut self, nth: u64, send: bool) -> Option<FaultAction> {
        let idx = self.faults.iter().position(|e| {
            e.nth == nth
                && if send {
                    e.action.is_send()
                } else {
                    e.action.is_recv()
                }
        })?;
        Some(self.faults.remove(idx).action)
    }

    /// Reads exactly `buf.len()` bytes from the inner connection; `Ok(false)`
    /// on clean EOF before the first byte.
    fn read_full(&mut self, buf: &mut [u8]) -> std::io::Result<bool> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 => return Ok(false),
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Pulls the next whole frame from the inner connection into `rbuf`,
    /// applying any scripted recv-direction fault; `Ok(false)` on clean
    /// EOF.
    fn fill_read_buffer(&mut self) -> std::io::Result<bool> {
        loop {
            let mut len_bytes = [0u8; 4];
            if !self.read_full(&mut len_bytes)? {
                return Ok(false);
            }
            let len = u32::from_le_bytes(len_bytes) as usize;
            if len as u64 > MAX_FRAME_LEN {
                // A garbage length prefix is not something the script can
                // meaningfully intercept: hand the bytes through and let
                // the frame layer produce its FrameTooLarge error.
                self.rbuf = len_bytes.to_vec();
                self.rpos = 0;
                return Ok(true);
            }
            // Body (version + payload) plus the trailing CRC.
            let mut rest = vec![0u8; len + 4];
            if !self.read_full(&mut rest)? {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            self.received += 1;
            match self.take_fault(self.received, false) {
                Some(FaultAction::DropRecv) => continue,
                Some(FaultAction::CorruptRecv) => {
                    // Flip a bit in the middle of the body: the length
                    // prefix stays intact (the stream remains framed), the
                    // CRC check catches the damage.
                    rest[len / 2] ^= 0x20;
                }
                _ => {}
            }
            let mut frame = Vec::with_capacity(4 + rest.len());
            frame.extend_from_slice(&len_bytes);
            frame.extend_from_slice(&rest);
            self.rbuf = frame;
            self.rpos = 0;
            return Ok(true);
        }
    }

    /// Applies the scripted send-direction fault (if any) to the complete
    /// frame sitting in `wbuf`, then writes whatever survives.
    fn flush_frame(&mut self) -> std::io::Result<()> {
        self.sent += 1;
        let frame = std::mem::take(&mut self.wbuf);
        match self.take_fault(self.sent, true) {
            Some(FaultAction::DropSend) => Ok(()),
            Some(FaultAction::CorruptSend) => {
                let mut frame = frame;
                if frame.len() > 8 {
                    // Inside the body: past the 4-byte length prefix,
                    // before the 4-byte CRC.
                    let mid = 4 + (frame.len() - 8) / 2;
                    frame[mid] ^= 0x20;
                }
                self.inner.write_all(&frame)?;
                self.inner.flush()
            }
            Some(FaultAction::TruncateSend { keep }) => {
                let cut = keep.min(frame.len());
                self.inner.write_all(&frame[..cut])?;
                let _ = self.inner.flush();
                self.inner.shutdown_both();
                Ok(())
            }
            Some(FaultAction::DelaySendMs(ms)) => {
                // gcod-check: allow(thread-sleep) — the chaos clock: a scripted transport delay must really stall the wire to exercise the router's deadline path.
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.write_all(&frame)?;
                self.inner.flush()
            }
            Some(FaultAction::CloseAfterSend) => {
                self.inner.write_all(&frame)?;
                let _ = self.inner.flush();
                self.inner.shutdown_both();
                Ok(())
            }
            _ => {
                self.inner.write_all(&frame)?;
                self.inner.flush()
            }
        }
    }
}

impl Read for ChaosConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.faults.is_empty() && self.rpos >= self.rbuf.len() {
            return self.inner.read(buf);
        }
        if self.rpos >= self.rbuf.len() && !self.fill_read_buffer()? {
            return Ok(0);
        }
        let available = &self.rbuf[self.rpos..];
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.rpos += n;
        Ok(n)
    }
}

impl Write for ChaosConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.faults.is_empty() && self.wbuf.is_empty() {
            return self.inner.write(buf);
        }
        self.wbuf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.wbuf.is_empty() {
            return self.inner.flush();
        }
        self.flush_frame()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        for seed in [0u64, 1, 7, 42, 1 << 40] {
            let a = FaultPlan::seeded(seed, 4, 8);
            let b = FaultPlan::seeded(seed, 4, 8);
            assert_eq!(a, b, "seed {seed} must be reproducible");
            assert_eq!(a.entries.len(), 8);
            for e in &a.entries {
                assert!(e.shard < 4);
                assert!((1..=6).contains(&e.nth));
                assert_ne!(e.action, FaultAction::KillWorker);
            }
        }
        assert_ne!(FaultPlan::seeded(1, 4, 8), FaultPlan::seeded(2, 4, 8));
    }

    #[test]
    fn plan_splits_transport_and_kill_entries() {
        let plan = FaultPlan::new()
            .with(0, 2, FaultAction::CorruptSend)
            .with(1, 3, FaultAction::KillWorker)
            .with(0, 5, FaultAction::DropRecv);
        assert_eq!(plan.transport_entries(0).len(), 2);
        assert!(plan.transport_entries(1).is_empty());
        assert_eq!(plan.kill_entries(), vec![(1, 3)]);
    }

    #[test]
    fn direction_classification_is_total() {
        let all = [
            FaultAction::DropSend,
            FaultAction::DropRecv,
            FaultAction::CorruptSend,
            FaultAction::CorruptRecv,
            FaultAction::TruncateSend { keep: 3 },
            FaultAction::DelaySendMs(1),
            FaultAction::CloseAfterSend,
        ];
        for action in all {
            assert!(
                action.is_send() ^ action.is_recv(),
                "{action:?} must belong to exactly one direction"
            );
        }
        assert!(!FaultAction::KillWorker.is_send());
        assert!(!FaultAction::KillWorker.is_recv());
    }
}
