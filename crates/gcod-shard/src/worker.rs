//! The shard worker: loads one [`ShardSpec`] and serves partial forward
//! passes over a socket.
//!
//! The protocol state machine lives in [`ShardWorker::handle`], a pure
//! function from request to reply, so the whole worker can be unit-tested
//! without sockets; [`run`] wires it to a [`ShardConn`] and
//! [`worker_main`] is the CLI entry point the `shard_worker` binary (and
//! self-spawning examples) delegate to.

use gcod_nn::layers::shard_layer_forward;
use gcod_nn::Tensor;

use crate::error::{Result, ShardError};
use crate::frame::{read_frame, write_frame};
use crate::proto::{ShardReply, ShardRequest, ShardSpec};
use crate::transport::{ShardAddr, ShardConn};
use crate::wire::WireError;

/// Loaded shard state between protocol steps.
#[derive(Debug)]
struct LoadedShard {
    spec: ShardSpec,
    /// Activations of every local node feeding the next layer.
    h_local: Tensor,
    /// Owned-row output of the last `RunLayer`, if any.
    owned_out: Option<Tensor>,
}

/// One shard's protocol state machine.
///
/// Errors never tear the worker down: a bad request yields a
/// [`ShardReply::Err`] and the connection stays usable.
#[derive(Debug, Default)]
pub struct ShardWorker {
    state: Option<LoadedShard>,
}

impl ShardWorker {
    /// A worker with no shard loaded yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a shard has been loaded.
    pub fn is_loaded(&self) -> bool {
        self.state.is_some()
    }

    /// Process one request, producing the reply to send back.
    pub fn handle(&mut self, request: ShardRequest) -> ShardReply {
        match self.try_handle(request) {
            Ok(reply) => reply,
            Err(message) => ShardReply::Err { message },
        }
    }

    fn try_handle(&mut self, request: ShardRequest) -> std::result::Result<ShardReply, String> {
        match request {
            ShardRequest::Ping => Ok(ShardReply::Pong),
            ShardRequest::Load(spec) => self.load(*spec),
            ShardRequest::RunLayer { layer } => self.run_layer(layer as usize),
            ShardRequest::Advance { halo } => self.advance(halo),
            ShardRequest::Gather { rows } => self.gather(&rows),
            ShardRequest::Shutdown => Ok(ShardReply::Bye),
        }
    }

    fn load(&mut self, spec: ShardSpec) -> std::result::Result<ShardReply, String> {
        let locals = spec.local_count();
        if spec.features.rows() != locals {
            return Err(format!(
                "spec features have {} rows but owned+halo = {locals}",
                spec.features.rows()
            ));
        }
        if spec.prop.rows() != spec.owned_count() || spec.prop.cols() != locals {
            return Err(format!(
                "spec propagation is {}x{} but owned = {} and locals = {locals}",
                spec.prop.rows(),
                spec.prop.cols(),
                spec.owned_count()
            ));
        }
        let mut position_used = vec![false; locals];
        for &pos in spec.owned_pos.iter().chain(&spec.halo_pos) {
            let pos = pos as usize;
            if pos >= locals || position_used[pos] {
                return Err(format!("local position {pos} out of range or duplicated"));
            }
            position_used[pos] = true;
        }
        if spec
            .export_rows
            .iter()
            .any(|&r| r as usize >= spec.owned_count())
        {
            return Err("export row index out of owned range".to_string());
        }
        if spec.layers.is_empty() {
            return Err("spec carries no layers".to_string());
        }
        let reply = ShardReply::Loaded {
            owned: spec.owned_count() as u32,
            halo: spec.halo_count() as u32,
        };
        self.state = Some(LoadedShard {
            h_local: spec.features.clone(),
            spec,
            owned_out: None,
        });
        Ok(reply)
    }

    fn run_layer(&mut self, layer: usize) -> std::result::Result<ShardReply, String> {
        let state = self.state.as_mut().ok_or("no shard loaded")?;
        if layer >= state.spec.layers.len() {
            return Err(format!(
                "layer {layer} out of range ({} layers)",
                state.spec.layers.len()
            ));
        }
        if layer == 0 {
            // A new inference starts: reset activations from features.
            state.h_local = state.spec.features.clone();
        }
        // Mirrors GnnModel::forward: residual applies from layer 1 on.
        let apply_residual = state.spec.residual && layer > 0;
        let owned_out = shard_layer_forward(
            &state.spec.layers[layer],
            &state.spec.prop,
            &state.h_local,
            &state.spec.owned_pos,
            apply_residual,
            0,
        )
        .map_err(|e| format!("layer {layer} forward failed: {e}"))?;
        let export_rows: Vec<usize> = state.spec.export_rows.iter().map(|&r| r as usize).collect();
        let exports = owned_out
            .gather_rows(&export_rows)
            .map_err(|e| format!("gathering export rows failed: {e}"))?;
        state.owned_out = Some(owned_out);
        Ok(ShardReply::LayerDone { exports })
    }

    fn advance(&mut self, halo: Tensor) -> std::result::Result<ShardReply, String> {
        let state = self.state.as_mut().ok_or("no shard loaded")?;
        let owned_out = state
            .owned_out
            .as_ref()
            .ok_or("Advance before any RunLayer")?;
        if halo.rows() != state.spec.halo_count() {
            return Err(format!(
                "halo tensor has {} rows but shard has {} halo nodes",
                halo.rows(),
                state.spec.halo_count()
            ));
        }
        if state.spec.halo_count() > 0 && halo.cols() != owned_out.cols() {
            return Err(format!(
                "halo width {} does not match layer output width {}",
                halo.cols(),
                owned_out.cols()
            ));
        }
        let d = owned_out.cols();
        let mut next = Tensor::zeros(state.spec.local_count(), d);
        for (rank, &pos) in state.spec.owned_pos.iter().enumerate() {
            next.row_mut(pos as usize)
                .copy_from_slice(owned_out.row(rank));
        }
        for (rank, &pos) in state.spec.halo_pos.iter().enumerate() {
            next.row_mut(pos as usize).copy_from_slice(halo.row(rank));
        }
        state.h_local = next;
        Ok(ShardReply::Advanced)
    }

    fn gather(&mut self, rows: &[u32]) -> std::result::Result<ShardReply, String> {
        let state = self.state.as_ref().ok_or("no shard loaded")?;
        let owned_out = state
            .owned_out
            .as_ref()
            .ok_or("Gather before any RunLayer")?;
        if let Some(&bad) = rows.iter().find(|&&r| r as usize >= owned_out.rows()) {
            return Err(format!(
                "gather row {bad} out of range ({} owned rows)",
                owned_out.rows()
            ));
        }
        let rows: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
        let gathered = owned_out
            .gather_rows(&rows)
            .map_err(|e| format!("gathering result rows failed: {e}"))?;
        Ok(ShardReply::Rows(gathered))
    }
}

/// Serve one connection until `Shutdown` or the peer hangs up.
///
/// Sends `Hello{shard_id}` first, then answers one reply per request.
///
/// Frame-level decode failures (a corrupt body caught by the CRC, an
/// unknown tag, trailing bytes, ...) do **not** kill the worker: the
/// length prefix already consumed the damaged frame, so the byte stream is
/// still in sync and the worker answers [`ShardReply::Err`] and keeps
/// serving — the router retries the idempotent RPC. Only a broken
/// transport (`Io`) is fatal; a clean `Closed` is a normal exit.
pub fn run(mut conn: ShardConn, shard_id: u32) -> Result<()> {
    write_frame(&mut conn, &ShardReply::Hello { shard: shard_id })?;
    let mut worker = ShardWorker::new();
    loop {
        let request: ShardRequest = match read_frame(&mut conn) {
            Ok((req, _)) => req,
            Err(WireError::Closed) => return Ok(()),
            // A timed-out or broken read may have left a partial frame on
            // the stream — no way back into sync, so exit.
            Err(e @ (WireError::Io { .. } | WireError::TimedOut { .. })) => {
                return Err(ShardError::Wire(e))
            }
            Err(recoverable) => {
                // The frame was fully consumed before decoding failed, so
                // the stream stays framed; report and continue serving.
                write_frame(
                    &mut conn,
                    &ShardReply::Err {
                        message: format!("bad frame: {recoverable}"),
                    },
                )?;
                continue;
            }
        };
        let shutdown = request == ShardRequest::Shutdown;
        let reply = worker.handle(request);
        write_frame(&mut conn, &reply)?;
        if shutdown {
            return Ok(());
        }
    }
}

/// CLI entry point for worker processes: parse `--addr <addr> --shard
/// <id>`, dial the router, serve until shutdown. Returns the process exit
/// code; errors go to stderr.
pub fn worker_main<I: IntoIterator<Item = String>>(args: I) -> i32 {
    let mut addr: Option<String> = None;
    let mut shard: Option<u32> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = iter.next(),
            "--shard" => shard = iter.next().and_then(|s| s.parse().ok()),
            other => {
                eprintln!("shard worker: unknown argument '{other}'");
                return 2;
            }
        }
    }
    let (Some(addr), Some(shard)) = (addr, shard) else {
        eprintln!("usage: shard_worker --addr <uds:path|tcp:ip:port> --shard <id>");
        return 2;
    };
    let parsed = match ShardAddr::parse(&addr) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("shard worker {shard}: {e}");
            return 2;
        }
    };
    let conn = match ShardConn::dial(&parsed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("shard worker {shard}: {e}");
            return 1;
        }
    };
    match run(conn, shard) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("shard worker {shard}: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::CsrMatrix;
    use gcod_nn::layers::{Activation, DenseLayer};

    /// A 3-node path graph sharded as {0,1} + halo {2}: prop rows of the
    /// owned nodes over local columns, identity-ish weights so expected
    /// outputs are easy to compute by hand.
    fn spec() -> ShardSpec {
        ShardSpec {
            shard_id: 0,
            num_shards: 2,
            layers: vec![
                DenseLayer {
                    weight: Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).expect("w0"),
                    bias: Tensor::from_vec(1, 2, vec![0.0, 0.0]).expect("b0"),
                    activation: Activation::Linear,
                },
                DenseLayer {
                    weight: Tensor::from_vec(2, 2, vec![2.0, 0.0, 0.0, 2.0]).expect("w1"),
                    bias: Tensor::from_vec(1, 2, vec![0.0, 0.0]).expect("b1"),
                    activation: Activation::Linear,
                },
            ],
            residual: false,
            prop: CsrMatrix::from_parts(
                2,
                3,
                vec![0, 2, 5],
                vec![0, 1, 0, 1, 2],
                vec![0.5, 0.5, 0.25, 0.5, 0.25],
            )
            .expect("prop"),
            features: Tensor::from_vec(3, 2, vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0]).expect("f"),
            owned_pos: vec![0, 1],
            halo_pos: vec![2],
            export_rows: vec![1],
        }
    }

    #[test]
    fn full_protocol_walkthrough() {
        let mut w = ShardWorker::new();
        assert_eq!(w.handle(ShardRequest::Ping), ShardReply::Pong);
        assert!(!w.is_loaded());

        let reply = w.handle(ShardRequest::Load(Box::new(spec())));
        assert_eq!(reply, ShardReply::Loaded { owned: 2, halo: 1 });

        // Layer 0: row0 = 0.5*f0 + 0.5*f1 = [4,6]; row1 = .25*f0+.5*f1+.25*f2 = [6, 8].
        let reply = w.handle(ShardRequest::RunLayer { layer: 0 });
        let exports = match reply {
            ShardReply::LayerDone { exports } => exports,
            other => panic!("expected LayerDone, got {other:?}"),
        };
        assert_eq!(exports.rows(), 1);
        assert_eq!(exports.row(0), &[6.0, 8.0]);

        // Ship a made-up halo row for node 2, then run layer 1.
        let halo = Tensor::from_vec(1, 2, vec![10.0, 20.0]).expect("halo");
        assert_eq!(
            w.handle(ShardRequest::Advance { halo }),
            ShardReply::Advanced
        );
        let reply = w.handle(ShardRequest::RunLayer { layer: 1 });
        let exports = match reply {
            ShardReply::LayerDone { exports } => exports,
            other => panic!("expected LayerDone, got {other:?}"),
        };
        // Layer 1 row1 = (0.25*[4,6] + 0.5*[6,8] + 0.25*[10,20]) * 2.
        assert_eq!(exports.row(0), &[13.0, 21.0]);

        let reply = w.handle(ShardRequest::Gather { rows: vec![0, 1] });
        let rows = match reply {
            ShardReply::Rows(rows) => rows,
            other => panic!("expected Rows, got {other:?}"),
        };
        assert_eq!(rows.rows(), 2);
        assert_eq!(w.handle(ShardRequest::Shutdown), ShardReply::Bye);
    }

    #[test]
    fn rerunning_layer_zero_resets_state() {
        let mut w = ShardWorker::new();
        w.handle(ShardRequest::Load(Box::new(spec())));
        let first = w.handle(ShardRequest::RunLayer { layer: 0 });
        // Advance with arbitrary halo, then restart from layer 0: the
        // result must match the first run, not leak the advanced state.
        let halo = Tensor::from_vec(1, 2, vec![-5.0, -5.0]).expect("halo");
        w.handle(ShardRequest::Advance { halo });
        let again = w.handle(ShardRequest::RunLayer { layer: 0 });
        assert_eq!(first, again);
    }

    #[test]
    fn protocol_misuse_yields_err_replies_not_panics() {
        let mut w = ShardWorker::new();
        for req in [
            ShardRequest::RunLayer { layer: 0 },
            ShardRequest::Advance {
                halo: Tensor::zeros(1, 2),
            },
            ShardRequest::Gather { rows: vec![0] },
        ] {
            assert!(
                matches!(w.handle(req), ShardReply::Err { .. }),
                "unloaded worker must reject"
            );
        }
        w.handle(ShardRequest::Load(Box::new(spec())));
        assert!(matches!(
            w.handle(ShardRequest::RunLayer { layer: 9 }),
            ShardReply::Err { .. }
        ));
        assert!(matches!(
            w.handle(ShardRequest::Gather { rows: vec![0] }),
            ShardReply::Err { .. }
        ));
        w.handle(ShardRequest::RunLayer { layer: 0 });
        assert!(matches!(
            w.handle(ShardRequest::Advance {
                halo: Tensor::zeros(5, 2),
            }),
            ShardReply::Err { .. }
        ));
        assert!(matches!(
            w.handle(ShardRequest::Gather { rows: vec![99] }),
            ShardReply::Err { .. }
        ));
    }

    #[test]
    fn malformed_specs_rejected_at_load() {
        let mut w = ShardWorker::new();
        let mut bad = spec();
        bad.owned_pos = vec![0, 0]; // duplicate position
        assert!(matches!(
            w.handle(ShardRequest::Load(Box::new(bad))),
            ShardReply::Err { .. }
        ));
        let mut bad = spec();
        bad.export_rows = vec![7];
        assert!(matches!(
            w.handle(ShardRequest::Load(Box::new(bad))),
            ShardReply::Err { .. }
        ));
        let mut bad = spec();
        bad.layers.clear();
        assert!(matches!(
            w.handle(ShardRequest::Load(Box::new(bad))),
            ShardReply::Err { .. }
        ));
        assert!(!w.is_loaded());
    }
}
