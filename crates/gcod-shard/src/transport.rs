//! Socket transport for shard workers: Unix-domain sockets where the
//! platform has them, TCP loopback as the portable fallback.
//!
//! Addresses render as `uds:<path>` / `tcp:<ip>:<port>` so a worker
//! process can receive its endpoint as a single CLI argument. Unix socket
//! paths are derived from the process id plus a monotonic counter — no
//! wall-clock or RNG involved, keeping the crate deterministic under the
//! `gcod-check` wall-clock lint.

use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;

use crate::error::{Result, ShardError};

/// Which socket family to use for the shard fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Unix-domain sockets (unix only; the default there).
    #[cfg(unix)]
    Uds,
    /// TCP over loopback — the portable fallback.
    Tcp,
}

// Not derivable portably: the default variant differs per platform (Uds
// does not exist off unix).
#[allow(clippy::derivable_impls)]
impl Default for TransportKind {
    fn default() -> Self {
        #[cfg(unix)]
        {
            TransportKind::Uds
        }
        #[cfg(not(unix))]
        {
            TransportKind::Tcp
        }
    }
}

/// A shard endpoint address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardAddr {
    /// Filesystem path of a Unix-domain socket.
    #[cfg(unix)]
    Uds(PathBuf),
    /// TCP socket address (loopback in practice).
    Tcp(SocketAddr),
}

impl fmt::Display for ShardAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            #[cfg(unix)]
            ShardAddr::Uds(path) => write!(f, "uds:{}", path.display()),
            ShardAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

impl ShardAddr {
    /// Parse the `uds:<path>` / `tcp:<ip>:<port>` rendering produced by
    /// [`Display`](fmt::Display).
    pub fn parse(s: &str) -> Result<ShardAddr> {
        if let Some(path) = s.strip_prefix("uds:") {
            #[cfg(unix)]
            {
                if path.is_empty() {
                    return Err(ShardError::InvalidConfig {
                        context: "empty unix socket path".to_string(),
                    });
                }
                return Ok(ShardAddr::Uds(PathBuf::from(path)));
            }
            #[cfg(not(unix))]
            {
                return Err(ShardError::InvalidConfig {
                    context: format!("unix sockets unavailable on this platform: uds:{path}"),
                });
            }
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            let parsed: SocketAddr = addr.parse().map_err(|_| ShardError::InvalidConfig {
                context: format!("invalid tcp address '{addr}'"),
            })?;
            return Ok(ShardAddr::Tcp(parsed));
        }
        Err(ShardError::InvalidConfig {
            context: format!("shard address '{s}' must start with 'uds:' or 'tcp:'"),
        })
    }
}

fn spawn_err(context: &str, e: std::io::Error) -> ShardError {
    ShardError::Spawn {
        context: format!("{context}: {e}"),
    }
}

/// Counter making Unix socket paths unique within one process without
/// consulting the clock or an RNG.
static UDS_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A listening shard endpoint the router binds before spawning workers.
#[derive(Debug)]
pub enum ShardListener {
    /// Listening Unix-domain socket plus its path (removed on drop).
    #[cfg(unix)]
    Uds(UnixListener, PathBuf),
    /// Listening TCP socket on loopback.
    Tcp(TcpListener),
}

impl ShardListener {
    /// Bind a fresh endpoint of the requested kind. UDS paths live in the
    /// system temp directory and are unique per process + bind; TCP binds
    /// `127.0.0.1:0` (ephemeral port).
    pub fn bind(kind: TransportKind) -> Result<ShardListener> {
        match kind {
            #[cfg(unix)]
            TransportKind::Uds => {
                let n = UDS_COUNTER.fetch_add(1, Ordering::Relaxed);
                let path = std::env::temp_dir()
                    .join(format!("gcod-shard-{}-{n}.sock", std::process::id()));
                // A stale file from a crashed run with a recycled pid
                // would make bind fail; it is ours by construction.
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path)
                    .map_err(|e| spawn_err(&format!("bind uds {}", path.display()), e))?;
                Ok(ShardListener::Uds(listener, path))
            }
            TransportKind::Tcp => {
                let listener = TcpListener::bind(("127.0.0.1", 0))
                    .map_err(|e| spawn_err("bind tcp 127.0.0.1:0", e))?;
                Ok(ShardListener::Tcp(listener))
            }
        }
    }

    /// The address a worker should dial to reach this listener.
    pub fn local_addr(&self) -> Result<ShardAddr> {
        match self {
            #[cfg(unix)]
            ShardListener::Uds(_, path) => Ok(ShardAddr::Uds(path.clone())),
            ShardListener::Tcp(listener) => {
                let addr = listener
                    .local_addr()
                    .map_err(|e| spawn_err("query tcp local addr", e))?;
                Ok(ShardAddr::Tcp(addr))
            }
        }
    }

    /// Block until one worker connects.
    pub fn accept(&self) -> Result<ShardConn> {
        match self {
            #[cfg(unix)]
            ShardListener::Uds(listener, path) => {
                let (stream, _) = listener
                    .accept()
                    .map_err(|e| spawn_err(&format!("accept on uds {}", path.display()), e))?;
                Ok(ShardConn::Uds(stream))
            }
            ShardListener::Tcp(listener) => {
                let (stream, _) = listener
                    .accept()
                    .map_err(|e| spawn_err("accept on tcp listener", e))?;
                stream
                    .set_nodelay(true)
                    .map_err(|e| spawn_err("set tcp nodelay", e))?;
                Ok(ShardConn::Tcp(stream))
            }
        }
    }
}

#[cfg(unix)]
impl Drop for ShardListener {
    fn drop(&mut self) {
        if let ShardListener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One established shard connection; [`Read`]/[`Write`] delegate to the
/// underlying stream so the [frame](crate::frame) layer is
/// transport-agnostic.
#[derive(Debug)]
pub enum ShardConn {
    /// Unix-domain stream.
    #[cfg(unix)]
    Uds(UnixStream),
    /// TCP stream (nodelay enabled).
    Tcp(TcpStream),
}

impl ShardConn {
    /// Connect to a listening shard endpoint.
    pub fn dial(addr: &ShardAddr) -> Result<ShardConn> {
        match addr {
            #[cfg(unix)]
            ShardAddr::Uds(path) => {
                let stream = UnixStream::connect(path)
                    .map_err(|e| spawn_err(&format!("dial uds {}", path.display()), e))?;
                Ok(ShardConn::Uds(stream))
            }
            ShardAddr::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| spawn_err(&format!("dial tcp {addr}"), e))?;
                stream
                    .set_nodelay(true)
                    .map_err(|e| spawn_err("set tcp nodelay", e))?;
                Ok(ShardConn::Tcp(stream))
            }
        }
    }

    /// Sets (or clears, with `None`) the read deadline: a blocked read
    /// returns an error the frame layer maps to
    /// [`WireError::TimedOut`](crate::WireError::TimedOut) once the
    /// duration elapses.
    ///
    /// # Errors
    ///
    /// [`ShardError::Spawn`] when the OS rejects
    /// the option (e.g. a zero duration).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        match self {
            #[cfg(unix)]
            ShardConn::Uds(s) => s.set_read_timeout(timeout),
            ShardConn::Tcp(s) => s.set_read_timeout(timeout),
        }
        .map_err(|e| spawn_err("set read timeout", e))
    }

    /// Sets (or clears, with `None`) the write deadline; see
    /// [`set_read_timeout`](ShardConn::set_read_timeout).
    ///
    /// # Errors
    ///
    /// [`ShardError::Spawn`] when the OS rejects
    /// the option.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        match self {
            #[cfg(unix)]
            ShardConn::Uds(s) => s.set_write_timeout(timeout),
            ShardConn::Tcp(s) => s.set_write_timeout(timeout),
        }
        .map_err(|e| spawn_err("set write timeout", e))
    }

    /// Severs both directions of the connection immediately. The peer's
    /// next read observes EOF; used by the chaos harness to simulate a
    /// crash at a scripted frame, and by the supervisor to fence off a
    /// worker it is about to respawn.
    pub fn shutdown_both(&self) {
        let _ = match self {
            #[cfg(unix)]
            ShardConn::Uds(s) => s.shutdown(std::net::Shutdown::Both),
            ShardConn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for ShardConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            ShardConn::Uds(s) => s.read(buf),
            ShardConn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ShardConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            ShardConn::Uds(s) => s.write(buf),
            ShardConn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            ShardConn::Uds(s) => s.flush(),
            ShardConn::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame};

    #[test]
    fn addr_display_parse_roundtrip_tcp() {
        let addr = ShardAddr::Tcp("127.0.0.1:4242".parse().expect("socket addr"));
        let rendered = addr.to_string();
        assert_eq!(rendered, "tcp:127.0.0.1:4242");
        assert_eq!(ShardAddr::parse(&rendered).expect("parse"), addr);
    }

    #[cfg(unix)]
    #[test]
    fn addr_display_parse_roundtrip_uds() {
        let addr = ShardAddr::Uds(PathBuf::from("/tmp/x.sock"));
        let rendered = addr.to_string();
        assert_eq!(rendered, "uds:/tmp/x.sock");
        assert_eq!(ShardAddr::parse(&rendered).expect("parse"), addr);
    }

    #[test]
    fn garbage_addresses_rejected() {
        assert!(ShardAddr::parse("http://nope").is_err());
        assert!(ShardAddr::parse("tcp:not-an-addr").is_err());
        assert!(ShardAddr::parse("").is_err());
    }

    fn exchange_one_frame(kind: TransportKind) {
        let listener = ShardListener::bind(kind).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut conn = ShardConn::dial(&addr).expect("dial");
            write_frame(&mut conn, &String::from("ping over the wire")).expect("client write");
            let (reply, _): (String, usize) = read_frame(&mut conn).expect("client read");
            reply
        });
        let mut server_conn = listener.accept().expect("accept");
        let (msg, _): (String, usize) = read_frame(&mut server_conn).expect("server read");
        assert_eq!(msg, "ping over the wire");
        write_frame(&mut server_conn, &format!("echo: {msg}")).expect("server write");
        let reply = client.join().expect("client thread");
        assert_eq!(reply, "echo: ping over the wire");
    }

    #[test]
    fn tcp_frames_cross_a_real_socket() {
        exchange_one_frame(TransportKind::Tcp);
    }

    #[cfg(unix)]
    #[test]
    fn uds_frames_cross_a_real_socket_and_path_is_cleaned_up() {
        let listener = ShardListener::bind(TransportKind::Uds).expect("bind");
        let path = match listener.local_addr().expect("addr") {
            ShardAddr::Uds(p) => p,
            other => panic!("expected uds addr, got {other}"),
        };
        assert!(path.exists());
        drop(listener);
        assert!(!path.exists(), "socket file must be removed on drop");
        exchange_one_frame(TransportKind::Uds);
    }
}
