//! The staged [`Experiment`] builder: one owner for the
//! generate → train → layout → polarize → split → workload plumbing.
//!
//! Every evaluation in this repository used to re-stitch the same sequence
//! by hand: generate a replica graph, run the GCoD pipeline (or just its
//! structural half), extract the denser/sparser split, build inference
//! workloads and feed them to the accelerator and baseline platform models.
//! [`Experiment`] owns that plumbing once and exposes each intermediate:
//!
//! * [`Experiment::generate`] — the replica [`Graph`] (stage 1),
//! * [`Experiment::tune`] — the structural half only (layout →
//!   polarize → structural sparsification → split), no GCN training; this is
//!   what the benchmark harness runs on dataset replicas,
//! * [`Experiment::train`] — the full three-step GCoD training pipeline,
//!   returning the [`GcodResult`] with accuracies and training cost,
//! * [`Experiment::run`] — training plus the platform comparison: every
//!   baseline and both GCoD accelerator variants simulated on the matching
//!   requests,
//! * [`Experiment::serve`] — training packaged for the `gcod-serve`
//!   front-end: a [`ServedModel`](gcod_serve::ServedModel) carrying the
//!   trained model, tuned graph and the split-aware simulation requests the
//!   backend router scores.
//!
//! ```no_run
//! use gcod::prelude::*;
//!
//! # fn main() -> gcod::Result<()> {
//! let report = Experiment::on(DatasetProfile::cora())
//!     .scale(0.08)
//!     .model(ModelKind::Gcn)
//!     .gcod(GcodConfig::default())
//!     .seed(7)
//!     .run()?;
//! println!(
//!     "GCoD accuracy {:.1}%, {:.1}x over PyG-CPU",
//!     report.result.gcod_accuracy * 100.0,
//!     report.speedup_over_cpu("gcod").unwrap()
//! );
//! # Ok(())
//! # }
//! ```

use crate::error::{Error, Result};
use gcod_baselines::suite;
use gcod_core::{
    structural_sparsify, GcodConfig, GcodPipeline, GcodResult, PolarizeReport, Polarizer,
    SplitWorkload, StructuralReport, SubgraphLayout,
};
use gcod_graph::{CsrMatrix, DatasetProfile, Graph, GraphGenerator};
use gcod_nn::kernels::KernelKind;
use gcod_nn::models::{ModelConfig, ModelKind};
use gcod_nn::quant::Precision;
use gcod_nn::workload::InferenceWorkload;
use gcod_platform::report::PerfReport;
use gcod_platform::SimRequest;

/// How the dataset profile is scaled down to a trainable replica.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ScaleSpec {
    /// Multiply the profile by a fixed factor.
    Factor(f64),
    /// Scale down to roughly this many nodes.
    TargetNodes(usize),
}

/// A staged description of one GCoD experiment on one dataset.
///
/// Built fluently from a [`DatasetProfile`]; every stage method
/// ([`generate`](Experiment::generate), [`tune`](Experiment::tune),
/// [`train`](Experiment::train), [`run`](Experiment::run)) is a pure
/// function of the builder state, so the stages compose: calling
/// [`generate`](Experiment::generate) first and [`train`](Experiment::train)
/// later operates on the identical (deterministically regenerated) graph.
#[derive(Debug, Clone)]
pub struct Experiment {
    profile: DatasetProfile,
    scale: Option<ScaleSpec>,
    model: ModelKind,
    config: GcodConfig,
    seed: u64,
}

impl Experiment {
    /// Starts an experiment on `profile` with default settings: no scaling,
    /// a GCN model, the default [`GcodConfig`] and seed 0.
    pub fn on(profile: DatasetProfile) -> Self {
        Self {
            profile,
            scale: None,
            model: ModelKind::Gcn,
            config: GcodConfig::default(),
            seed: 0,
        }
    }

    /// Starts an experiment on the named paper dataset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownDataset`] (listing the valid names) when
    /// `name` is not one of the paper's six datasets.
    pub fn on_dataset(name: &str) -> Result<Self> {
        Ok(Self::on(DatasetProfile::by_name(name)?))
    }

    /// Scales the dataset profile by `factor` before generating the replica.
    pub fn scale(mut self, factor: f64) -> Self {
        self.scale = Some(ScaleSpec::Factor(factor));
        self
    }

    /// Scales the dataset profile down to roughly `target` nodes (profiles
    /// already below the target are left unchanged).
    pub fn scale_to_nodes(mut self, target: usize) -> Self {
        self.scale = Some(ScaleSpec::TargetNodes(target));
        self
    }

    /// Selects the GNN model trained by the pipeline (default:
    /// [`ModelKind::Gcn`]).
    pub fn model(mut self, kind: ModelKind) -> Self {
        self.model = kind;
        self
    }

    /// Sets the GCoD algorithm configuration (default:
    /// [`GcodConfig::default`]).
    ///
    /// Overwrites any kernel selected earlier via
    /// [`kernel`](Experiment::kernel) with `config.kernel`, so call
    /// `.gcod(..)` before `.kernel(..)` when combining the two.
    pub fn gcod(mut self, config: GcodConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the SpMM kernel every GCN trained by this experiment
    /// aggregates with (default: [`KernelKind::NaiveCsr`]).
    ///
    /// All kernels are bit-for-bit identical — selection changes training
    /// wall-clock only, never accuracies, splits or the simulated platform
    /// reports (the golden-report tests in `gcod-bench` pin this).
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Selects the worker-lane count every GCN trained by this experiment
    /// runs its parallel kernels with (default: 0 = the global
    /// `gcod_runtime` pool's lane count, i.e. `GCOD_WORKERS` or the
    /// hardware's parallelism).
    ///
    /// Worker count is bit-deterministic: 1, 2 and auto all produce
    /// identical accuracies, splits and platform reports — only training
    /// wall-clock changes. Like [`kernel`](Experiment::kernel), this lives
    /// on the [`GcodConfig`], so call `.gcod(..)` *before* `.workers(..)`
    /// when combining the two.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Selects the numeric precision every GCN trained by this experiment
    /// evaluates with (default: [`Precision::Fp32`]).
    ///
    /// Unlike [`kernel`](Experiment::kernel) and
    /// [`workers`](Experiment::workers) this DOES change numerics: at
    /// [`Precision::Int8`] / [`Precision::Int16`] every forward pass outside
    /// the gradient path (accuracy evaluation, inference) runs the integer
    /// compute path in `gcod_nn::qkernels`, so reported accuracies shift by
    /// the quantization error. Training gradients always stay f32
    /// (post-training quantization). Lives on the [`GcodConfig`], so call
    /// `.gcod(..)` *before* `.precision(..)` when combining the two.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.config.precision = precision;
        self
    }

    /// Sets the seed used for graph generation, layout and training
    /// (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The full-size dataset profile this experiment was built on.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// The GCoD configuration this experiment runs with.
    pub fn config(&self) -> &GcodConfig {
        &self.config
    }

    /// The (possibly scaled) profile the replica graph is generated from.
    pub fn replica_profile(&self) -> DatasetProfile {
        match self.scale {
            None => self.profile.clone(),
            Some(ScaleSpec::Factor(f)) => self.profile.scaled(f),
            Some(ScaleSpec::TargetNodes(n)) => self.profile.scaled_to_nodes(n),
        }
    }

    /// Stage 1: generates the replica graph.
    ///
    /// # Errors
    ///
    /// Propagates graph-generation errors (e.g. invalid profiles).
    pub fn generate(&self) -> Result<Graph> {
        Ok(GraphGenerator::new(self.seed).generate(&self.replica_profile())?)
    }

    /// Runs the structural half of the GCoD algorithm — layout, sparsify +
    /// polarize, structural sparsification, split extraction — without any
    /// GCN training.
    ///
    /// This is the fast path the benchmark harness uses on dataset replicas
    /// to measure structural outcomes (prune ratio, denser/sparser balance)
    /// that are then projected onto full-size graphs.
    ///
    /// # Errors
    ///
    /// Propagates generation, configuration and partitioning errors.
    pub fn tune(&self) -> Result<StructuralRun> {
        let original = self.generate()?;
        let layout = SubgraphLayout::build(&original, &self.config, self.seed)?;
        let reordered = layout.apply(&original);
        let (tuned, polarize_report) =
            Polarizer::new(self.config.clone()).tune(reordered.adjacency(), &layout)?;
        let polarized_split = SplitWorkload::extract(&tuned, &layout);
        let (adjacency, structural_report) = structural_sparsify(
            &tuned,
            &layout,
            self.config.patch_size,
            self.config.patch_threshold,
        );
        let split = SplitWorkload::extract(&adjacency, &layout);
        Ok(StructuralRun {
            original,
            reordered,
            layout,
            polarize_report,
            polarized_split,
            adjacency,
            structural_report,
            split,
        })
    }

    /// Stage 2: runs the full three-step GCoD training pipeline on the
    /// generated replica.
    ///
    /// # Errors
    ///
    /// Propagates generation, configuration, partitioning and training
    /// errors.
    pub fn train(&self) -> Result<GcodResult> {
        let graph = self.generate()?;
        Ok(GcodPipeline::new(self.config.clone()).run(&graph, self.model, self.seed)?)
    }

    /// Stage 4: trains the full GCoD pipeline and packages the result for
    /// the serving front-end — the trained model, the tuned graph it answers
    /// queries on, and the pruned fp32/int8 workloads plus denser/sparser
    /// split that make the accelerator platforms eligible routing backends.
    ///
    /// The served model is named `"<dataset>-<model>"` (rename with
    /// [`ServedModel::named`](gcod_serve::ServedModel::named)); register it
    /// on a [`Server`](gcod_serve::Server) and
    /// [`spawn`](gcod_serve::Server::spawn) to start answering requests:
    ///
    /// ```no_run
    /// use gcod::prelude::*;
    ///
    /// # fn main() -> gcod::Result<()> {
    /// let served = Experiment::on_dataset("cora")?.scale(0.05).serve()?;
    /// let handle = Server::new().register(served).spawn();
    /// let ticket = handle.submit(
    ///     ServeRequest::classify("cora-gcn", vec![0, 1]),
    ///     SubmitOptions::default(),
    /// )?;
    /// println!("{:?}", ticket.wait()?);
    /// handle.shutdown();
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates generation, configuration, partitioning and training
    /// errors.
    pub fn serve(&self) -> Result<gcod_serve::ServedModel> {
        let result = self.train()?;
        let model_cfg = ModelConfig::for_kind(self.model, &result.graph);
        let nnz = result.split.total_nnz();
        let fp32 = InferenceWorkload::build_with_adjacency_nnz(
            &result.graph,
            &model_cfg,
            Precision::Fp32,
            nnz,
        );
        let int8 = InferenceWorkload::build_with_adjacency_nnz(
            &result.graph,
            &model_cfg,
            Precision::Int8,
            nnz,
        );
        let name = format!("{}-{}", self.profile.name, self.model.name());
        Ok(
            gcod_serve::ServedModel::new(name, result.graph, result.model).with_gcod_split(
                fp32,
                int8,
                result.split,
            ),
        )
    }

    /// Stage 4, sharded: trains the full GCoD pipeline and launches the
    /// trained model across `shards` worker threads speaking the
    /// `gcod-shard` wire protocol (BNS-style partition + halo exchange),
    /// each owning one partition of the tuned graph.
    ///
    /// The returned [`ShardedModel`](gcod_serve::ShardedModel) is the
    /// drop-in sharded counterpart of [`serve`](Experiment::serve) for
    /// classification requests — register it with
    /// [`Server::register_sharded`](gcod_serve::Server::register_sharded)
    /// and answers are bit-identical to the single-process path. To run
    /// real worker *processes* instead, launch via
    /// [`ShardedModel::launch`](gcod_serve::ShardedModel::launch) with
    /// [`ShardOptions::with_worker_bin`](gcod_serve::ShardOptions::with_worker_bin)
    /// pointing at the workspace's `shard_worker` binary.
    ///
    /// # Errors
    ///
    /// Propagates generation, configuration, partitioning and training
    /// errors, plus shard-plan rejections (zero shards, more shards than
    /// nodes).
    pub fn serve_sharded(&self, shards: usize) -> Result<gcod_serve::ShardedModel> {
        let result = self.train()?;
        let name = format!("{}-{}", self.profile.name, self.model.name());
        Ok(gcod_serve::ShardedModel::launch(
            name,
            &result.graph,
            &result.model,
            &gcod_serve::ShardOptions::new(shards),
        )?)
    }

    /// Stage 3: the full co-design experiment — training plus the platform
    /// comparison of Fig. 9: the nine baselines simulate the unmodified
    /// replica workload, the GCoD accelerator and its 8-bit variant simulate
    /// the pruned workload with the denser/sparser split.
    ///
    /// # Errors
    ///
    /// Propagates every pipeline error plus platform simulation failures.
    pub fn run(&self) -> Result<ExperimentReport> {
        let graph = self.generate()?;
        let result = GcodPipeline::new(self.config.clone()).run(&graph, self.model, self.seed)?;
        let model_cfg = ModelConfig::for_kind(self.model, &graph);
        let nnz = result.split.total_nnz();
        let requests = SuiteRequests::new(
            InferenceWorkload::build(&graph, &model_cfg, Precision::Fp32),
            InferenceWorkload::build_with_adjacency_nnz(
                &result.graph,
                &model_cfg,
                Precision::Fp32,
                nnz,
            ),
            InferenceWorkload::build_with_adjacency_nnz(
                &result.graph,
                &model_cfg,
                Precision::Int8,
                nnz,
            ),
            result.split.clone(),
        );
        let platforms = requests.simulate_all()?;
        Ok(ExperimentReport {
            graph,
            result,
            requests,
            platforms,
        })
    }
}

/// Output of [`Experiment::tune`]: every intermediate of the structural
/// (no-training) GCoD pass.
#[derive(Debug, Clone)]
pub struct StructuralRun {
    /// The generated replica graph, in its original node order.
    pub original: Graph,
    /// The replica after the split-and-conquer reordering.
    pub reordered: Graph,
    /// The class/subgraph/group layout and its permutation.
    pub layout: SubgraphLayout,
    /// Report of the sparsify + polarize step.
    pub polarize_report: PolarizeReport,
    /// Denser/sparser split of the polarized adjacency (before structural
    /// sparsification).
    pub polarized_split: SplitWorkload,
    /// The final adjacency after structural sparsification.
    pub adjacency: CsrMatrix,
    /// Report of the structural sparsification step.
    pub structural_report: StructuralReport,
    /// Denser/sparser split of the final adjacency.
    pub split: SplitWorkload,
}

impl StructuralRun {
    /// Fraction of the original directed edges retained after sparsify +
    /// polarize + structural sparsification.
    pub fn retained_edge_fraction(&self) -> f64 {
        self.adjacency.nnz() as f64 / self.original.num_edges().max(1) as f64
    }

    /// Fraction of the retained edges that fall in the denser
    /// (block-diagonal) branch.
    pub fn denser_fraction(&self) -> f64 {
        1.0 - self.split.sparser_fraction()
    }
}

/// The three requests one experiment feeds to the platform suite: the
/// unmodified workload for the baselines, and the pruned workload plus GCoD
/// split at both precisions for the accelerator variants.
#[derive(Debug, Clone)]
pub struct SuiteRequests {
    /// Request the (split-less) baseline platforms consume.
    pub baseline: SimRequest,
    /// Split-carrying request for the fp32 GCoD accelerator.
    pub gcod_fp32: SimRequest,
    /// Split-carrying request for the 8-bit GCoD accelerator.
    pub gcod_int8: SimRequest,
}

impl SuiteRequests {
    /// Builds the request triple from the three workloads and the GCoD
    /// split.
    pub fn new(
        baseline: InferenceWorkload,
        gcod_fp32: InferenceWorkload,
        gcod_int8: InferenceWorkload,
        split: SplitWorkload,
    ) -> Self {
        Self {
            baseline: SimRequest::new(baseline),
            gcod_fp32: SimRequest::with_split(gcod_fp32, split.clone()),
            gcod_int8: SimRequest::with_split(gcod_int8, split),
        }
    }

    /// The request platform `p` should consume: split-requiring platforms
    /// get the split request matching their native precision, everything
    /// else gets the baseline request.
    pub fn request_for(&self, platform: &dyn gcod_platform::Platform) -> &SimRequest {
        if platform.requires_split() {
            match platform.native_precision() {
                Some(Precision::Int8) => &self.gcod_int8,
                _ => &self.gcod_fp32,
            }
        } else {
            &self.baseline
        }
    }

    /// Simulates every platform of [`suite::all_platforms`] on its matching
    /// request, in suite order (nine baselines, then GCoD, then GCoD-8bit).
    ///
    /// # Errors
    ///
    /// Propagates platform simulation failures.
    pub fn simulate_all(&self) -> Result<Vec<PerfReport>> {
        suite::all_platforms()
            .iter()
            .map(|p| {
                p.simulate(self.request_for(p.as_ref()))
                    .map_err(Error::from)
            })
            .collect()
    }
}

/// Output of [`Experiment::run`]: the replica, the training result and the
/// per-platform performance reports.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// The generated replica graph (original node order).
    pub graph: Graph,
    /// The full GCoD training result (tuned graph, layout, split, model,
    /// accuracies, step reports, training cost).
    pub result: GcodResult,
    /// The simulation requests the platforms consumed.
    pub requests: SuiteRequests,
    /// One performance report per platform, in suite order.
    pub platforms: Vec<PerfReport>,
}

impl ExperimentReport {
    /// The report of the named platform, if it is part of the suite.
    pub fn platform(&self, name: &str) -> Option<&PerfReport> {
        self.platforms.iter().find(|r| r.platform == name)
    }

    /// Speedup of platform `name` over the PyG-CPU reference the paper
    /// normalizes to.
    pub fn speedup_over_cpu(&self, name: &str) -> Option<f64> {
        let reference = self.platform(suite::reference_platform().name.as_str())?;
        Some(self.platform(name)?.speedup_over(reference.latency_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> GcodConfig {
        GcodConfig {
            num_classes: 2,
            num_subgraphs: 6,
            num_groups: 2,
            pretrain_epochs: 6,
            retrain_epochs: 4,
            prune_ratio: 0.1,
            patch_size: 16,
            patch_threshold: 6,
            ..GcodConfig::default()
        }
    }

    fn tiny() -> Experiment {
        Experiment::on(DatasetProfile::custom("exp", 160, 550, 12, 4))
            .gcod(fast_config())
            .seed(5)
    }

    #[test]
    fn on_dataset_rejects_unknown_names() {
        let err = Experiment::on_dataset("imagenet").unwrap_err();
        assert!(matches!(err, Error::UnknownDataset { .. }));
        assert!(Experiment::on_dataset("Cora").is_ok());
    }

    #[test]
    fn generate_is_deterministic_across_calls() {
        let exp = tiny();
        let a = exp.generate().unwrap();
        let b = exp.generate().unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn scale_to_nodes_bounds_the_replica() {
        let exp = Experiment::on(DatasetProfile::pubmed()).scale_to_nodes(500);
        assert!(exp.replica_profile().nodes <= 550);
        let unscaled = Experiment::on(DatasetProfile::custom("s", 100, 300, 8, 2));
        assert_eq!(unscaled.replica_profile().nodes, 100);
    }

    #[test]
    fn tune_exposes_consistent_intermediates() {
        let run = tiny().tune().unwrap();
        assert_eq!(run.original.num_nodes(), run.reordered.num_nodes());
        assert_eq!(run.split.total_nnz(), run.adjacency.nnz());
        assert!(run.retained_edge_fraction() > 0.5 && run.retained_edge_fraction() <= 1.0);
        assert!(run.denser_fraction() > 0.0 && run.denser_fraction() <= 1.0);
        // Structural step starts from the polarize output.
        assert_eq!(
            run.structural_report.nnz_before,
            run.polarize_report.nnz_after
        );
        assert_eq!(
            run.polarized_split.total_nnz(),
            run.polarize_report.nnz_after
        );
    }

    #[test]
    fn kernel_stage_selects_the_training_kernel() {
        let exp = tiny().kernel(KernelKind::ParallelCsr);
        assert_eq!(exp.config().kernel, KernelKind::ParallelCsr);
        // .gcod(..) resets the kernel along with the rest of the config.
        let exp = tiny()
            .kernel(KernelKind::TiledCsr)
            .gcod(fast_config())
            .kernel(KernelKind::DegreeBinned);
        assert_eq!(exp.config().kernel, KernelKind::DegreeBinned);
    }

    #[test]
    fn precision_stage_selects_the_evaluation_precision() {
        let exp = tiny().precision(Precision::Int8);
        assert_eq!(exp.config().precision, Precision::Int8);
        // .gcod(..) resets the precision along with the rest of the config.
        let exp = tiny().precision(Precision::Int16).gcod(fast_config());
        assert_eq!(exp.config().precision, Precision::Fp32);
    }

    #[test]
    fn workers_stage_selects_the_training_worker_count() {
        let exp = tiny().workers(3);
        assert_eq!(exp.config().workers, 3);
        // .gcod(..) resets the worker count along with the rest of the config.
        let exp = tiny().workers(4).gcod(fast_config());
        assert_eq!(exp.config().workers, 0);
    }

    #[test]
    fn worker_count_never_changes_training_outcomes() {
        let base = tiny().kernel(KernelKind::ParallelCsr);
        let one = base.clone().workers(1).train().unwrap();
        let two = base.clone().workers(2).train().unwrap();
        let auto = base.workers(0).train().unwrap();
        assert_eq!(one.gcod_accuracy, two.gcod_accuracy);
        assert_eq!(one.gcod_accuracy, auto.gcod_accuracy);
        assert_eq!(one.baseline_accuracy, two.baseline_accuracy);
        assert_eq!(one.split.total_nnz(), auto.split.total_nnz());
    }

    #[test]
    fn serve_packages_the_trained_pipeline() {
        let exp = tiny();
        let served = exp.serve().unwrap();
        assert_eq!(served.name(), "exp-gcn");
        assert!(served.has_split());
        // The served graph/model are the tuned pipeline outputs.
        let result = exp.train().unwrap();
        assert_eq!(served.graph().num_edges(), result.graph.num_edges());
        let logits = served.model().forward(served.graph()).unwrap();
        let expected = result.model.forward(&result.graph).unwrap();
        assert_eq!(logits, expected, "served model must be the trained model");
        // Served models route through the serving stack end to end.
        let server = gcod_serve::Server::new().register(served);
        let response = server
            .serve_one(&gcod_serve::ServeRequest::predict_perf("exp-gcn"))
            .unwrap();
        let perf = response.as_perf().unwrap();
        assert!(perf.candidates >= 11, "split makes accelerators eligible");
    }

    #[test]
    fn run_reports_all_platforms_with_the_gcod_split() {
        let report = tiny().run().unwrap();
        assert_eq!(report.platforms.len(), suite::all_platforms().len());
        assert!(report.platform("gcod").is_some());
        assert!(report.platform("gcod-8bit").is_some());
        assert!(report.speedup_over_cpu("gcod").unwrap() > 1.0);
        assert_eq!(
            report
                .requests
                .gcod_fp32
                .split
                .as_ref()
                .unwrap()
                .total_nnz(),
            report.result.split.total_nnz()
        );
        // The int8 request carries the int8 workload.
        assert_eq!(report.requests.gcod_int8.precision(), Precision::Int8);
    }
}
