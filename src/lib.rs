//! GCoD: Graph Convolutional Network acceleration via dedicated algorithm
//! and accelerator co-design — facade crate.
//!
//! The facade adds the three pieces that make the workspace usable as one
//! co-design system, and re-exports every subcrate underneath:
//!
//! * [`Experiment`] — a staged builder owning the
//!   generate → train → layout → polarize → split → workload plumbing, with
//!   each intermediate exposed ([`Experiment::generate`],
//!   [`Experiment::tune`], [`Experiment::train`], [`Experiment::run`]),
//! * [`Error`] / [`Result`] — one error type absorbing every subcrate's
//!   enum, so `?` works across the whole pipeline,
//! * [`prelude`] — the single import driving all of it.
//!
//! The subcrates remain available for direct use:
//!
//! * [`runtime`] — the persistent worker pool every parallel kernel runs on
//!   ([`runtime::Pool`], `GCOD_WORKERS`),
//! * [`graph`] — sparse formats, synthetic datasets, partitioning,
//! * [`nn`] — the GNN models (GCN, GIN, GAT, GraphSAGE, ResGCN) and training,
//! * [`core`] — the GCoD split-and-conquer training algorithm,
//! * [`platform`] — the shared [`Platform`](platform::Platform) simulation
//!   contract and [`PerfReport`](platform::report::PerfReport) currency,
//! * [`accel`] — the two-pronged GCoD accelerator simulator,
//! * [`baselines`] — CPU/GPU/HyGCN/AWB-GCN/FPGA baseline platform models,
//!   plus [`baselines::suite::all_platforms`] bundling the accelerator and
//!   all baselines behind one `dyn Platform` surface,
//! * [`serve`] — the batched inference serving front-end: a bounded
//!   submission queue, a batcher fusing compatible requests into one forward
//!   pass, and a cost-scored multi-backend router (build served models with
//!   [`Experiment::serve`]),
//! * [`shard`] — cross-process sharded serving: graph partitioning with
//!   1-hop halos, a length-prefixed checksummed wire protocol over
//!   UDS/TCP, and the shard worker (launch with
//!   [`Experiment::serve_sharded`]; the `shard_worker` binary hosts one
//!   shard per OS process).
//!
//! # Quickstart
//!
//! Run the whole co-design loop — replica generation, GCoD training and the
//! platform comparison — from one builder:
//!
//! ```no_run
//! use gcod::prelude::*;
//!
//! # fn main() -> gcod::Result<()> {
//! let report = Experiment::on(DatasetProfile::cora())
//!     .scale(0.08)
//!     .model(ModelKind::Gcn)
//!     .gcod(GcodConfig::default())
//!     .seed(7)
//!     .run()?;
//! println!(
//!     "GCoD: {:.1}% accuracy (baseline {:.1}%), {:.0}x over PyG-CPU",
//!     report.result.gcod_accuracy * 100.0,
//!     report.result.baseline_accuracy * 100.0,
//!     report.speedup_over_cpu("gcod").unwrap(),
//! );
//! # Ok(())
//! # }
//! ```
//!
//! Or stop at any stage:
//!
//! ```
//! use gcod::prelude::*;
//!
//! # fn main() -> gcod::Result<()> {
//! let run = Experiment::on_dataset("citeseer")?
//!     .scale_to_nodes(300)
//!     .seed(1)
//!     .tune()?; // structural half only — no GCN training
//! println!(
//!     "retained {:.1}% of edges, denser branch holds {:.1}%",
//!     run.retained_edge_fraction() * 100.0,
//!     run.denser_fraction() * 100.0,
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod experiment;
pub mod prelude;

pub use error::{Error, Result};
pub use experiment::{Experiment, ExperimentReport, StructuralRun, SuiteRequests};

/// The persistent worker-pool runtime (re-export of `gcod-runtime`).
pub mod runtime {
    pub use gcod_runtime::*;
}

/// Sparse graph substrate (re-export of `gcod-graph`).
pub mod graph {
    pub use gcod_graph::*;
}

/// GNN models and training (re-export of `gcod-nn`).
pub mod nn {
    pub use gcod_nn::*;
}

/// The GCoD algorithm (re-export of `gcod-core`).
pub mod core {
    pub use gcod_core::*;
}

/// The shared platform simulation contract (re-export of `gcod-platform`).
pub mod platform {
    pub use gcod_platform::*;
}

/// The GCoD accelerator simulator (re-export of `gcod-accel`).
pub mod accel {
    pub use gcod_accel::*;
}

/// Baseline platform models (re-export of `gcod-baselines`).
pub mod baselines {
    pub use gcod_baselines::*;
}

/// The batched inference serving front-end (re-export of `gcod-serve`).
pub mod serve {
    pub use gcod_serve::*;
}

/// Cross-process sharded serving: shard planning, the framed wire
/// protocol, and the worker state machine (re-export of `gcod-shard`).
pub mod shard {
    pub use gcod_shard::*;
}
