//! GCoD: Graph Convolutional Network acceleration via dedicated algorithm
//! and accelerator co-design — facade crate.
//!
//! This crate re-exports the full public API of the workspace so that
//! downstream users (and the examples and integration tests in this
//! repository) only need a single dependency:
//!
//! * [`graph`] — sparse formats, synthetic datasets, partitioning,
//! * [`nn`] — the GNN models (GCN, GIN, GAT, GraphSAGE, ResGCN) and training,
//! * [`core`] — the GCoD split-and-conquer training algorithm,
//! * [`accel`] — the two-pronged GCoD accelerator simulator,
//! * [`baselines`] — CPU/GPU/HyGCN/AWB-GCN/FPGA baseline platform models.
//!
//! # Quickstart
//!
//! ```
//! use gcod::graph::{DatasetProfile, GraphGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let profile = DatasetProfile::cora().scaled(0.05);
//! let graph = GraphGenerator::new(0).generate(&profile)?;
//! println!("{} nodes, {} edges", graph.num_nodes(), graph.num_edges());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

/// Sparse graph substrate (re-export of `gcod-graph`).
pub mod graph {
    pub use gcod_graph::*;
}

/// GNN models and training (re-export of `gcod-nn`).
pub mod nn {
    pub use gcod_nn::*;
}

/// The GCoD algorithm (re-export of `gcod-core`).
pub mod core {
    pub use gcod_core::*;
}

/// The GCoD accelerator simulator (re-export of `gcod-accel`).
pub mod accel {
    pub use gcod_accel::*;
}

/// Baseline platform models (re-export of `gcod-baselines`).
pub mod baselines {
    pub use gcod_baselines::*;
}
