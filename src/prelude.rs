//! One-import surface for driving GCoD experiments.
//!
//! ```
//! use gcod::prelude::*;
//!
//! # fn main() -> gcod::Result<()> {
//! let graph = Experiment::on(DatasetProfile::cora())
//!     .scale(0.05)
//!     .seed(42)
//!     .generate()?;
//! assert!(graph.num_edges() > 0);
//! # Ok(())
//! # }
//! ```

pub use crate::error::{Error, Result};
pub use crate::experiment::{Experiment, ExperimentReport, StructuralRun, SuiteRequests};

pub use gcod_graph::{
    DatasetProfile, Graph, GraphGenerator, GraphStats, QuantWidth, QuantizedCsr, KNOWN_DATASETS,
};

pub use gcod_runtime::Pool;

pub use gcod_nn::kernels::{KernelKind, SpmmKernel};
pub use gcod_nn::models::{GnnModel, ModelConfig, ModelKind};
pub use gcod_nn::qkernels::QuantSpmmKernel;
pub use gcod_nn::quant::{Precision, QuantizedModel, QuantizedTensor};
pub use gcod_nn::train::{TrainConfig, Trainer};
pub use gcod_nn::workload::InferenceWorkload;

pub use gcod_core::{GcodConfig, GcodPipeline, GcodResult, SplitWorkload};

pub use gcod_platform::report::PerfReport;
pub use gcod_platform::{Platform, PlatformError, SimRequest};

pub use gcod_accel::config::{AcceleratorConfig, PipelineKind};
pub use gcod_accel::simulator::GcodAccelerator;

pub use gcod_baselines::{suite, PlatformSpec};

pub use gcod_serve::{
    Backend, Classification, Handle, PerfPrediction, RejectReason, ServeError, ServeRequest,
    ServeResponse, ServedModel, Server, ServerConfig, ServerStats, ShardHealth, ShardOptions,
    ShardShutdownOutcome, ShardTransportStats, ShardedModel, ShutdownReport, SpawnMode,
    SubmitOptions, SupervisorPolicy, Ticket,
};

pub use gcod_shard::{FaultAction, FaultPlan, ShardPlan, ShardPlanConfig, TransportKind};
