//! The unified error type of the facade crate.
//!
//! Each workspace crate keeps its own error enum (`GraphError`, `NnError`,
//! `GcodError`, `PlatformError`), but callers driving a whole experiment
//! should not have to spell out four `From` conversions. [`Error`] absorbs
//! all of them — flattening the nesting `GcodError` introduces — so `?`
//! works uniformly across the co-design pipeline.

use gcod_core::GcodError;
use gcod_graph::GraphError;
use gcod_nn::NnError;
use gcod_platform::PlatformError;
use gcod_serve::{RejectReason, ServeError};
use std::fmt;

/// Any error the GCoD workspace can produce, unified for facade callers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A dataset name did not match any of the paper's six profiles.
    UnknownDataset {
        /// The name that failed to resolve.
        name: String,
    },
    /// An error from the sparse graph substrate.
    Graph(GraphError),
    /// An error from the neural-network substrate.
    Nn(NnError),
    /// An error from the GCoD training pipeline (configuration validation
    /// and other algorithm-level failures).
    Gcod(GcodError),
    /// An error from a platform simulation.
    Platform(PlatformError),
    /// The serving front-end refused to run a request (queue backpressure,
    /// deadline expiry, overload shedding, shutdown) — hoisted out of
    /// [`ServeError`] so facade callers match the structured
    /// [`RejectReason`] one level deep, like every other flattened arm.
    Rejected(RejectReason),
    /// An error from the serving front-end (model/backend routing,
    /// sharded-serving failures).
    Serve(ServeError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Delegate so the message (and its list of valid names) has one
            // source of truth in the graph crate.
            Error::UnknownDataset { name } => {
                write!(f, "{}", GraphError::UnknownDataset { name: name.clone() })
            }
            Error::Graph(e) => write!(f, "graph error: {e}"),
            Error::Nn(e) => write!(f, "model error: {e}"),
            Error::Gcod(e) => write!(f, "{e}"),
            Error::Platform(e) => write!(f, "platform error: {e}"),
            Error::Rejected(reason) => write!(f, "serving rejected: {reason}"),
            Error::Serve(e) => write!(f, "serving error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::UnknownDataset { .. } => None,
            Error::Graph(e) => Some(e),
            Error::Nn(e) => Some(e),
            Error::Gcod(e) => Some(e),
            Error::Platform(e) => Some(e),
            Error::Rejected(_) => None,
            Error::Serve(e) => Some(e),
        }
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        match e {
            GraphError::UnknownDataset { name } => Error::UnknownDataset { name },
            other => Error::Graph(other),
        }
    }
}

impl From<NnError> for Error {
    fn from(e: NnError) -> Self {
        Error::Nn(e)
    }
}

impl From<GcodError> for Error {
    fn from(e: GcodError) -> Self {
        // Flatten the wrapping the algorithm crate adds around substrate
        // errors so facade callers match one level only.
        match e {
            GcodError::Graph(g) => Error::from(g),
            GcodError::Nn(n) => Error::Nn(n),
            other => Error::Gcod(other),
        }
    }
}

impl From<PlatformError> for Error {
    fn from(e: PlatformError) -> Self {
        Error::Platform(e)
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Self {
        // Flatten the substrate wrappers the serving crate adds, mirroring
        // the `GcodError` treatment: facade callers match one level only.
        match e {
            ServeError::Nn(n) => Error::Nn(n),
            ServeError::Platform(p) => Error::Platform(p),
            ServeError::Rejected(reason) => Error::Rejected(reason),
            other => Error::Serve(other),
        }
    }
}

/// Result alias for the facade crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_dataset_is_hoisted_out_of_graph_errors() {
        let err = Error::from(GraphError::UnknownDataset {
            name: "mnist".to_string(),
        });
        assert!(matches!(err, Error::UnknownDataset { ref name } if name == "mnist"));
        let text = err.to_string();
        assert!(text.contains("mnist") && text.contains("cora"));
    }

    #[test]
    fn gcod_wrappers_are_flattened() {
        let err = Error::from(GcodError::Graph(GraphError::EmptyGraph));
        assert_eq!(err, Error::Graph(GraphError::EmptyGraph));
        let err = Error::from(GcodError::Nn(NnError::ShapeMismatch {
            context: "2x3 vs 4x5".to_string(),
        }));
        assert!(matches!(err, Error::Nn(_)));
        let err = Error::from(GcodError::InvalidConfig {
            context: "bad".to_string(),
        });
        assert!(matches!(err, Error::Gcod(_)));
    }

    #[test]
    fn serve_wrappers_are_flattened() {
        let err = Error::from(ServeError::Nn(NnError::ShapeMismatch {
            context: "bad".to_string(),
        }));
        assert!(matches!(err, Error::Nn(_)));
        let err = Error::from(ServeError::Platform(PlatformError::MissingSplit {
            platform: "gcod".to_string(),
        }));
        assert!(matches!(err, Error::Platform(_)));
        let err = Error::from(ServeError::Rejected(RejectReason::QueueFull {
            capacity: 4,
        }));
        assert_eq!(
            err,
            Error::Rejected(RejectReason::QueueFull { capacity: 4 })
        );
        assert!(err.to_string().contains("rejected"));
        let err = Error::from(ServeError::Canceled);
        assert!(matches!(err, Error::Serve(ServeError::Canceled)));
        assert!(err.to_string().contains("serving error"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn platform_errors_convert_and_chain_sources() {
        let err = Error::from(PlatformError::MissingSplit {
            platform: "gcod".to_string(),
        });
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("gcod"));
    }
}
