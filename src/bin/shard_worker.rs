//! Shard worker binary: one OS process serving one graph partition of a
//! sharded model over the `gcod-shard` wire protocol.
//!
//! Spawned by the router (`gcod_serve::ShardOptions::with_worker_bin`) as
//! `shard_worker --addr <uds:path|tcp:ip:port> --shard <id>`; all protocol
//! logic lives in [`gcod_shard::worker_main`].

fn main() {
    std::process::exit(gcod_shard::worker_main(std::env::args().skip(1)));
}
