//! Quickstart: generate a Cora-like graph, train a GCN on it, run the GCoD
//! split-and-conquer pipeline and compare accuracy and adjacency structure.
//!
//! Run with `cargo run --release --example quickstart`.

use gcod::core::{render_adjacency, GcodConfig, GcodPipeline};
use gcod::graph::{DatasetProfile, GraphGenerator, GraphStats};
use gcod::nn::models::{GnnModel, ModelConfig, ModelKind};
use gcod::nn::train::{TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A laptop-sized replica of the Cora citation graph.
    let profile = DatasetProfile::cora().scaled(0.08);
    let graph = GraphGenerator::new(42).generate(&profile)?;
    println!(
        "generated '{}': {} nodes, {} directed edges, {} features, {} classes",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges(),
        graph.feature_dim(),
        graph.num_classes()
    );

    // 2. Train a plain two-layer GCN as the baseline.
    let mut model = GnnModel::new(ModelConfig::gcn(&graph), 0)?;
    let report = Trainer::new(TrainConfig {
        epochs: 60,
        ..TrainConfig::default()
    })
    .fit(&mut model, &graph)?;
    println!(
        "baseline GCN: train {:.1}% / test {:.1}% after {} epochs",
        report.final_train_accuracy * 100.0,
        report.final_test_accuracy * 100.0,
        report.epochs_run
    );

    // 3. Run the GCoD split-and-conquer pipeline.
    let config = GcodConfig {
        num_classes: 2,
        num_subgraphs: 6,
        num_groups: 2,
        pretrain_epochs: 30,
        retrain_epochs: 15,
        ..GcodConfig::default()
    };
    let result = GcodPipeline::new(config).run(&graph, ModelKind::Gcn, 0)?;
    println!(
        "GCoD: accuracy {:.1}% (baseline {:.1}%), {:.1}% of edges pruned, sparser-branch share {:.1}%",
        result.gcod_accuracy * 100.0,
        result.baseline_accuracy * 100.0,
        result.total_prune_ratio() * 100.0,
        result.split.sparser_fraction() * 100.0
    );
    println!(
        "training cost: {:.2}x the standard schedule (paper: 0.7x-1.1x)",
        result.training_cost.relative_overhead()
    );

    // 4. Show the polarized adjacency matrix.
    let stats = GraphStats::compute(result.graph.adjacency());
    println!(
        "tuned adjacency: {} nnz, sparsity {:.2}%, diagonal mass {:.1}%",
        stats.nnz,
        stats.sparsity * 100.0,
        stats.diagonal_mass * 100.0
    );
    println!(
        "{}",
        render_adjacency(result.graph.adjacency(), Some(&result.layout), 48)
    );
    Ok(())
}
