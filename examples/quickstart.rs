//! Quickstart: run the whole GCoD co-design loop — replica generation,
//! baseline + GCoD training, denser/sparser split and the cross-platform
//! performance comparison — from one staged [`Experiment`].
//!
//! Run with `cargo run --release --example quickstart [scale]` where the
//! optional `scale` (default 0.08) sizes the Cora replica.

use gcod::prelude::*;

fn main() -> gcod::Result<()> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.08);

    // One builder owns the generate/train/split/simulate plumbing.
    let experiment = Experiment::on(DatasetProfile::cora())
        .scale(scale)
        .model(ModelKind::Gcn)
        .gcod(GcodConfig {
            num_classes: 2,
            num_subgraphs: 6,
            num_groups: 2,
            pretrain_epochs: 30,
            retrain_epochs: 15,
            ..GcodConfig::default()
        })
        .seed(42);

    // Stage 1: the laptop-sized Cora replica.
    let graph = experiment.generate()?;
    println!(
        "generated '{}': {} nodes, {} directed edges, {} features, {} classes",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges(),
        graph.feature_dim(),
        graph.num_classes()
    );

    // Stages 2+3: GCoD training (including the standard-GCN baseline) and
    // the platform comparison.
    let report = experiment.run()?;
    let result = &report.result;
    println!(
        "GCoD: accuracy {:.1}% (baseline {:.1}%), {:.1}% of edges pruned, sparser-branch share {:.1}%",
        result.gcod_accuracy * 100.0,
        result.baseline_accuracy * 100.0,
        result.total_prune_ratio() * 100.0,
        result.split.sparser_fraction() * 100.0
    );
    println!(
        "training cost: {:.2}x the standard schedule (paper: 0.7x-1.1x)",
        result.training_cost.relative_overhead()
    );

    // The polarized adjacency matrix the accelerator exploits.
    let stats = GraphStats::compute(result.graph.adjacency());
    println!(
        "tuned adjacency: {} nnz, sparsity {:.2}%, diagonal mass {:.1}%",
        stats.nnz,
        stats.sparsity * 100.0,
        stats.diagonal_mass * 100.0
    );
    println!(
        "{}",
        gcod::core::render_adjacency(result.graph.adjacency(), Some(&result.layout), 48)
    );

    // Every platform of the suite through the same `dyn Platform` surface.
    println!("normalized speedups over PyG-CPU on this replica:");
    for perf in &report.platforms {
        println!(
            "  {:<10} {:>10.2}x ({:.4} ms)",
            perf.platform,
            report.speedup_over_cpu(&perf.platform).unwrap_or(0.0),
            perf.latency_ms
        );
    }
    Ok(())
}
