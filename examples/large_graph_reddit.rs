//! Large-graph scenario: the Reddit post graph, where the aggregation output
//! no longer fits on chip and GCoD switches to its resource-aware pipeline.
//!
//! This example works from the full-size Reddit statistics (232,965 nodes /
//! 114.6 M undirected edges) without materialising the graph, exactly like
//! the paper's hardware evaluation, and contrasts the efficiency-aware and
//! resource-aware pipelines.
//!
//! Run with `cargo run --release --example large_graph_reddit`.

use gcod::core::workload::DenseBlock;
use gcod::graph::CscMatrix;
use gcod::prelude::*;

fn main() -> gcod::Result<()> {
    let profile = DatasetProfile::reddit();
    let directed_edges = profile.edges * 2;
    println!(
        "Reddit: {} nodes, {} directed edges, {} features, {} classes",
        profile.nodes, directed_edges, profile.feature_dim, profile.classes
    );

    // Model: 2-layer GCN with 64 hidden units (Table IV).
    let model_cfg = ModelConfig {
        kind: ModelKind::Gcn,
        input_dim: profile.feature_dim,
        hidden_dim: 64,
        output_dim: profile.classes,
        num_layers: 2,
        heads: 1,
        eps: 0.0,
        residual: false,
    };
    let workload = InferenceWorkload::from_stats(
        "reddit",
        profile.nodes,
        directed_edges,
        1.0,
        &model_cfg,
        Precision::Fp32,
    );
    println!(
        "inference cost: {:.1} GFLOPs (paper quotes ~19 GFLOPs for this setting)",
        workload.total_flops() as f64 / 1.0e9
    );

    // A two-class GCoD split with the paper's ~10% pruning and a 70/30
    // denser/sparser balance (what the algorithm measures on Reddit-like
    // community structure).
    let retained = (directed_edges as f64 * 0.90) as usize;
    let denser_nnz = (retained as f64 * 0.72) as usize;
    let split = SplitWorkload {
        blocks: (0..16)
            .map(|i| DenseBlock {
                class: i % 2,
                group: i % 4,
                start: i * (profile.nodes / 16),
                len: profile.nodes / 16,
                nnz: denser_nnz / 16,
            })
            .collect(),
        sparser: CscMatrix::zeros(profile.nodes, profile.nodes),
        denser_nnz,
        sparser_nnz: retained - denser_nnz,
        num_classes: 2,
    };
    let gcod_request = SimRequest::with_split(
        InferenceWorkload::from_stats(
            "reddit",
            profile.nodes,
            retained,
            1.0,
            &model_cfg,
            Precision::Fp32,
        ),
        split,
    );

    println!("\npipeline comparison on Reddit (GCoD accelerator):");
    for (label, pipeline) in [
        ("efficiency-aware", PipelineKind::EfficiencyAware),
        ("resource-aware", PipelineKind::ResourceAware),
        ("auto", PipelineKind::Auto),
    ] {
        let cfg = AcceleratorConfig {
            pipeline,
            ..AcceleratorConfig::vcu128()
        };
        let report = GcodAccelerator::new(cfg).simulate(&gcod_request)?;
        println!(
            "  {label:<17} latency {:>9.3} ms, off-chip {:>8.1} MB, peak bw {:>6.1} GB/s",
            report.latency_ms,
            report.off_chip_bytes as f64 / 1.0e6,
            report.peak_bandwidth_gbps
        );
    }

    println!("\nbaselines on the unpruned Reddit workload:");
    let baseline_request = SimRequest::new(workload);
    for name in ["pyg-cpu", "pyg-gpu", "hygcn", "awb-gcn"] {
        let platform = suite::by_name(name).expect("known baseline");
        let report = platform.simulate(&baseline_request)?;
        println!(
            "  {:<10} latency {:>12.1} ms, off-chip {:>9.1} MB",
            name,
            report.latency_ms,
            report.off_chip_bytes as f64 / 1.0e6
        );
    }
    Ok(())
}
