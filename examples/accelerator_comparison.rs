//! Compare the GCoD accelerator against every baseline platform on one
//! dataset, the way Fig. 9 does for a single column.
//!
//! Run with `cargo run --release --example accelerator_comparison [dataset]`
//! where `dataset` is one of cora, citeseer, pubmed, nell, ogbn-arxiv,
//! reddit (default: cora).

use gcod::accel::config::AcceleratorConfig;
use gcod::accel::simulator::GcodAccelerator;
use gcod::baselines::{suite, Platform};
use gcod::core::{GcodConfig, Polarizer, SplitWorkload, SubgraphLayout};
use gcod::graph::{DatasetProfile, GraphGenerator};
use gcod::nn::models::ModelConfig;
use gcod::nn::quant::Precision;
use gcod::nn::workload::InferenceWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cora".to_string());
    let profile =
        DatasetProfile::by_name(&dataset).ok_or_else(|| format!("unknown dataset {dataset}"))?;

    // Work on a replica sized for a laptop; the relative platform ordering is
    // what this example demonstrates.
    let scale = (2_000.0 / profile.nodes as f64).min(1.0);
    let graph = GraphGenerator::new(7).generate(&profile.scaled(scale))?;
    println!(
        "dataset {} (replica: {} nodes, {} directed edges)",
        profile.name,
        graph.num_nodes(),
        graph.num_edges()
    );

    // GCoD algorithm: layout + polarization.
    let config = GcodConfig::default();
    let layout = SubgraphLayout::build(&graph, &config, 0)?;
    let reordered = layout.apply(&graph);
    let (tuned, polarize_report) = Polarizer::new(config).tune(reordered.adjacency(), &layout)?;
    let split = SplitWorkload::extract(&tuned, &layout);
    println!(
        "GCoD algorithm: pruned {:.1}% of edges, denser branch holds {:.1}% of the rest",
        polarize_report.achieved_prune_ratio * 100.0,
        (1.0 - split.sparser_fraction()) * 100.0
    );

    // Workloads for the baselines (full adjacency) and GCoD (tuned adjacency).
    let model_cfg = ModelConfig::gcn(&reordered);
    let baseline_workload = InferenceWorkload::build(&reordered, &model_cfg, Precision::Fp32);
    let gcod_workload = InferenceWorkload::build_with_adjacency_nnz(
        &reordered,
        &model_cfg,
        Precision::Fp32,
        split.total_nnz(),
    );

    let cpu_latency = suite::reference_platform()
        .simulate(&baseline_workload)
        .latency_ms;
    println!(
        "\n{:<12} {:>14} {:>14} {:>12}",
        "platform", "latency (ms)", "speedup", "off-chip MB"
    );
    for platform in suite::all_baselines() {
        let report = platform.simulate(&baseline_workload);
        println!(
            "{:<12} {:>14.4} {:>13.1}x {:>12.2}",
            report.platform,
            report.latency_ms,
            cpu_latency / report.latency_ms,
            report.off_chip_bytes as f64 / 1.0e6
        );
    }
    for accel_cfg in [
        AcceleratorConfig::vcu128(),
        AcceleratorConfig::vcu128_int8(),
    ] {
        let report = GcodAccelerator::new(accel_cfg).simulate(&gcod_workload, &split);
        println!(
            "{:<12} {:>14.4} {:>13.1}x {:>12.2}",
            report.platform,
            report.latency_ms,
            cpu_latency / report.latency_ms,
            report.off_chip_bytes as f64 / 1.0e6
        );
    }
    Ok(())
}
