//! Compare the GCoD accelerator against every baseline platform on one
//! dataset, the way Fig. 9 does for a single column.
//!
//! Run with `cargo run --release --example accelerator_comparison [dataset] [nodes]`
//! where `dataset` is one of cora, citeseer, pubmed, nell, ogbn-arxiv,
//! reddit (default: cora) and `nodes` bounds the replica size (default 2000).

use gcod::prelude::*;

fn main() -> gcod::Result<()> {
    let dataset = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cora".to_string());
    let target_nodes: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    // Work on a replica sized for a laptop; the relative platform ordering is
    // what this example demonstrates. `on_dataset` rejects unknown names
    // with an error listing the valid ones.
    let experiment = Experiment::on_dataset(&dataset)?
        .scale_to_nodes(target_nodes)
        .gcod(GcodConfig::default())
        .seed(7);

    // Structural half only: layout + polarization, no GCN training.
    let run = experiment.tune()?;
    println!(
        "dataset {} (replica: {} nodes, {} directed edges)",
        experiment.profile().name,
        run.reordered.num_nodes(),
        run.reordered.num_edges()
    );
    println!(
        "GCoD algorithm: pruned {:.1}% of edges, denser branch holds {:.1}% of the rest",
        run.polarize_report.achieved_prune_ratio * 100.0,
        (1.0 - run.polarized_split.sparser_fraction()) * 100.0
    );

    // Workloads for the baselines (full adjacency) and GCoD (tuned
    // adjacency), then every platform through the one `Platform::simulate`
    // signature.
    let model_cfg = ModelConfig::gcn(&run.reordered);
    let split = run.polarized_split.clone();
    let requests = SuiteRequests::new(
        InferenceWorkload::build(&run.reordered, &model_cfg, Precision::Fp32),
        InferenceWorkload::build_with_adjacency_nnz(
            &run.reordered,
            &model_cfg,
            Precision::Fp32,
            split.total_nnz(),
        ),
        InferenceWorkload::build_with_adjacency_nnz(
            &run.reordered,
            &model_cfg,
            Precision::Int8,
            split.total_nnz(),
        ),
        split,
    );
    let reports = requests.simulate_all()?;
    let cpu_latency = reports
        .iter()
        .find(|r| r.platform == "pyg-cpu")
        .expect("reference platform in suite")
        .latency_ms;

    println!(
        "\n{:<12} {:>14} {:>14} {:>12}",
        "platform", "latency (ms)", "speedup", "off-chip MB"
    );
    for report in &reports {
        println!(
            "{:<12} {:>14.4} {:>13.1}x {:>12.2}",
            report.platform,
            report.latency_ms,
            cpu_latency / report.latency_ms,
            report.off_chip_bytes as f64 / 1.0e6
        );
    }
    Ok(())
}
