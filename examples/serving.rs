//! Serving demo: train two models through [`Experiment::serve`], spawn the
//! batched inference server, hammer it with concurrent clients, and verify
//! every batched answer bit-for-bit against the sequential oracle.
//!
//! Run with
//! `cargo run --release --example serving [nodes] [clients] [requests-per-client]`
//! (defaults 160 / 4 / 6). CI runs it at tiny scale with `GCOD_WORKERS=2`;
//! the example exits non-zero if any ticket fails to resolve or any batched
//! response differs from the oracle.

use gcod::prelude::*;

fn fast_config() -> GcodConfig {
    GcodConfig {
        num_classes: 2,
        num_subgraphs: 6,
        num_groups: 2,
        pretrain_epochs: 8,
        retrain_epochs: 5,
        prune_ratio: 0.1,
        patch_size: 16,
        patch_threshold: 6,
        ..GcodConfig::default()
    }
}

/// The two experiments the server trains and serves.
fn experiments(nodes: usize) -> Vec<Experiment> {
    vec![
        Experiment::on(DatasetProfile::cora())
            .scale_to_nodes(nodes)
            .gcod(fast_config())
            .seed(7),
        Experiment::on(DatasetProfile::citeseer())
            .scale_to_nodes(nodes * 3 / 4)
            .gcod(fast_config())
            .seed(9),
    ]
}

/// The request stream of one client: a few classifications with wrapping
/// node windows plus one auto-routed perf prediction per model.
fn client_requests(
    client: usize,
    per_client: usize,
    models: &[(String, usize)],
) -> Vec<ServeRequest> {
    let mut requests = Vec::new();
    for i in 0..per_client {
        let (model, nodes) = &models[(client + i) % models.len()];
        if i + 1 == per_client {
            requests.push(ServeRequest::predict_perf(model.clone()));
        } else {
            let start = (client * 13 + i * 7) % nodes;
            let window: Vec<usize> = (0..4).map(|k| (start + k * 3) % nodes).collect();
            requests.push(ServeRequest::classify(model.clone(), window));
        }
    }
    requests
}

fn main() -> gcod::Result<()> {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(160);
    let clients: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let per_client: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);

    println!("training served models ({nodes}-node replicas)...");
    let mut server = Server::with_config(ServerConfig {
        queue_capacity: (clients * per_client).max(8),
        max_batch: 16,
        ..ServerConfig::default()
    });
    let mut models: Vec<(String, usize)> = Vec::new();
    for experiment in experiments(nodes) {
        let served = experiment.serve()?;
        println!(
            "  {}: {} nodes, {} edges after tuning, split attached: {}",
            served.name(),
            served.graph().num_nodes(),
            served.graph().num_edges(),
            served.has_split(),
        );
        models.push((served.name().to_string(), served.graph().num_nodes()));
        server = server.register(served);
    }

    // Plan every client's stream up front and compute the sequential oracle
    // before spawning — the batched server must reproduce these bytes.
    let streams: Vec<Vec<ServeRequest>> = (0..clients)
        .map(|c| client_requests(c, per_client, &models))
        .collect();
    let oracle: Vec<Vec<gcod::Result<ServeResponse>>> = streams
        .iter()
        .map(|stream| {
            stream
                .iter()
                .map(|r| server.serve_one(r).map_err(gcod::Error::from))
                .collect()
        })
        .collect();

    println!("spawning server, {clients} concurrent clients x {per_client} requests...");
    let handle = server.spawn();
    let workers: Vec<_> = streams
        .iter()
        .cloned()
        .map(|stream| {
            let handle = handle.clone();
            std::thread::spawn(move || -> Vec<gcod::Result<ServeResponse>> {
                stream
                    .iter()
                    .map(|request| {
                        handle
                            .submit(request.clone(), SubmitOptions::default().blocking())
                            .and_then(|ticket| ticket.wait())
                            .map_err(gcod::Error::from)
                    })
                    .collect()
            })
        })
        .collect();

    let mut mismatches = 0usize;
    let mut resolved = 0usize;
    for (client, worker) in workers.into_iter().enumerate() {
        let responses = worker.join().expect("client thread panicked");
        for (i, (got, want)) in responses.iter().zip(&oracle[client]).enumerate() {
            resolved += 1;
            if got != want {
                mismatches += 1;
                eprintln!("client {client} request {i}: batched != oracle");
            }
        }
    }
    let stats = handle.shutdown();
    println!(
        "resolved {resolved}/{} tickets; batches {}, largest fused batch {}, expired {}, rejected {}",
        clients * per_client,
        stats.batches,
        stats.largest_batch,
        stats.expired,
        stats.rejected,
    );
    assert_eq!(
        resolved,
        clients * per_client,
        "every submitted ticket must resolve"
    );
    assert_eq!(mismatches, 0, "batched serving must match the oracle");
    println!("OK: all batched responses bit-identical to the sequential oracle");
    Ok(())
}
