//! Accuracy study: how GCoD's graph tuning compares with the compression
//! baselines of Table VII (random pruning, SGCN sparsification, QAT,
//! Degree-Quant) on a citation-graph replica.
//!
//! Run with `cargo run --release --example compression_study [scale]` where
//! the optional `scale` (default 0.06) sizes the CiteSeer replica.

use gcod::core::compression::{evaluate_compression, CompressionMethod};
use gcod::prelude::*;

fn main() -> gcod::Result<()> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.06);

    let experiment = Experiment::on(DatasetProfile::citeseer())
        .scale(scale)
        .model(ModelKind::Gcn)
        .gcod(GcodConfig {
            num_classes: 2,
            num_subgraphs: 6,
            num_groups: 2,
            pretrain_epochs: 30,
            retrain_epochs: 15,
            ..GcodConfig::default()
        })
        .seed(3);

    // Stage 1: the replica graph (the compression baselines train on the
    // same graph the GCoD pipeline below regenerates deterministically).
    let graph = experiment.generate()?;
    println!(
        "CiteSeer replica: {} nodes, {} directed edges, {} classes",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes()
    );

    let epochs = 50;
    println!(
        "\n{:<16} {:>10} {:>16}",
        "method", "accuracy", "edges retained"
    );
    for method in [
        CompressionMethod::Vanilla,
        CompressionMethod::RandomPruning { ratio: 0.10 },
        CompressionMethod::Sgcn { ratio: 0.10 },
        CompressionMethod::Qat,
        CompressionMethod::DegreeQuant,
    ] {
        let outcome = evaluate_compression(&graph, ModelKind::Gcn, method, epochs, 0)?;
        println!(
            "{:<16} {:>9.1}% {:>16}",
            outcome.method,
            outcome.test_accuracy * 100.0,
            outcome.edges_retained
        );
    }

    // Stage 2: the full GCoD pipeline on the same replica.
    let result = experiment.train()?;
    println!(
        "{:<16} {:>9.1}% {:>16}",
        "gcod",
        result.gcod_accuracy * 100.0,
        result.graph.num_edges()
    );
    println!(
        "\nGCoD accuracy delta over the vanilla baseline: {:+.1}% (paper: +0.2% to +2.8%)",
        result.accuracy_delta() * 100.0
    );
    Ok(())
}
