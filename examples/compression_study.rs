//! Accuracy study: how GCoD's graph tuning compares with the compression
//! baselines of Table VII (random pruning, SGCN sparsification, QAT,
//! Degree-Quant) on a citation-graph replica.
//!
//! Run with `cargo run --release --example compression_study`.

use gcod::core::compression::{evaluate_compression, CompressionMethod};
use gcod::core::{GcodConfig, GcodPipeline};
use gcod::graph::{DatasetProfile, GraphGenerator};
use gcod::nn::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::citeseer().scaled(0.06);
    let graph = GraphGenerator::new(3).generate(&profile)?;
    println!(
        "CiteSeer replica: {} nodes, {} directed edges, {} classes",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes()
    );

    let epochs = 50;
    println!(
        "\n{:<16} {:>10} {:>16}",
        "method", "accuracy", "edges retained"
    );
    for method in [
        CompressionMethod::Vanilla,
        CompressionMethod::RandomPruning { ratio: 0.10 },
        CompressionMethod::Sgcn { ratio: 0.10 },
        CompressionMethod::Qat,
        CompressionMethod::DegreeQuant,
    ] {
        let outcome = evaluate_compression(&graph, ModelKind::Gcn, method, epochs, 0)?;
        println!(
            "{:<16} {:>9.1}% {:>16}",
            outcome.method,
            outcome.test_accuracy * 100.0,
            outcome.edges_retained
        );
    }

    let config = GcodConfig {
        num_classes: 2,
        num_subgraphs: 6,
        num_groups: 2,
        pretrain_epochs: 30,
        retrain_epochs: 15,
        ..GcodConfig::default()
    };
    let result = GcodPipeline::new(config).run(&graph, ModelKind::Gcn, 0)?;
    println!(
        "{:<16} {:>9.1}% {:>16}",
        "gcod",
        result.gcod_accuracy * 100.0,
        result.graph.num_edges()
    );
    println!(
        "\nGCoD accuracy delta over the vanilla baseline: {:+.1}% (paper: +0.2% to +2.8%)",
        result.accuracy_delta() * 100.0
    );
    Ok(())
}
