//! Sharded serving demo: train one model, split it across **two real
//! worker OS processes** (this same binary re-executed in worker mode),
//! serve classifications through the shard router, and verify every answer
//! bit-for-bit against the single-process oracle.
//!
//! Run with `cargo run --release --example sharded_serving [nodes]`
//! (default 180). CI runs it at tiny scale with `GCOD_WORKERS=2`; the
//! example exits non-zero if any sharded response differs from the oracle.
//!
//! ```text
//! sharded_serving ──spawn──▶ sharded_serving --addr uds:... --shard 0
//!        │        ──spawn──▶ sharded_serving --addr uds:... --shard 1
//!        └── ShardRouter: RunLayer / halo Advance / Gather over UDS
//! ```

use gcod::prelude::*;

const SHARDS: usize = 2;

fn main() -> gcod::Result<()> {
    // Worker re-entry: the router spawns this same binary as
    // `sharded_serving --addr <addr> --shard <id>`; seeing `--addr` first
    // means we are a worker process, never the training path.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--addr") {
        std::process::exit(gcod::shard::worker_main(args));
    }
    let nodes: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(180);

    println!("training the served model ({nodes}-node cora replica)...");
    let experiment = Experiment::on(DatasetProfile::cora())
        .scale_to_nodes(nodes)
        .gcod(GcodConfig {
            num_classes: 2,
            num_subgraphs: 6,
            num_groups: 2,
            pretrain_epochs: 6,
            retrain_epochs: 4,
            prune_ratio: 0.1,
            patch_size: 16,
            patch_threshold: 6,
            ..GcodConfig::default()
        })
        .seed(11);
    let served = experiment.serve()?;
    let name = served.name().to_string();
    let n = served.graph().num_nodes();
    let graph = served.graph().clone();
    let model = served.model().clone();
    let oracle = Server::new().register(served);

    println!("launching {SHARDS} worker processes (this binary, worker mode)...");
    let me = std::env::current_exe().expect("current_exe");
    let sharded = ShardedModel::launch(
        &name,
        &graph,
        &model,
        &ShardOptions::new(SHARDS).with_worker_bin(&me),
    )?;
    // The router re-spawns this example; workers see `--worker` first and
    // never reach the training path.
    let plan_halo = sharded.plan().total_halo_nodes();
    println!(
        "  plan: {} shards over {} nodes, {} halo slots ({:.1}% replicated)",
        sharded.shards(),
        n,
        plan_halo,
        100.0 * plan_halo as f64 / n as f64,
    );
    let server = Server::new().register_sharded(sharded);

    let request_sets: Vec<Vec<usize>> = vec![
        vec![0, 1, 2, 3],
        (0..n).step_by(5).collect(),
        vec![n - 1, 0, n / 2, n / 2],
        (0..n).collect(),
    ];
    let mut mismatches = 0usize;
    for (i, set) in request_sets.iter().enumerate() {
        let request = ServeRequest::classify(&name, set.clone());
        let want = oracle.serve_one(&request)?;
        let got = server.serve_one(&request)?;
        if got != want {
            mismatches += 1;
            eprintln!("request {i} ({} nodes): sharded != oracle", set.len());
        }
    }

    // Surface the transport counters through the queued path too.
    let handle = server.spawn();
    let ticket = handle.submit(
        ServeRequest::classify(&name, vec![0, 7]),
        SubmitOptions::default(),
    )?;
    ticket.wait()?;
    let stats = handle.shutdown();
    println!(
        "transport: {} frames / {} bytes sent, {} frames / {} bytes received, {} halo rows relayed",
        stats.shard.frames_sent,
        stats.shard.bytes_sent,
        stats.shard.frames_received,
        stats.shard.bytes_received,
        stats.shard.halo_rows,
    );
    assert_eq!(
        mismatches, 0,
        "sharded serving must match the single-process oracle"
    );
    println!("OK: all sharded responses bit-identical to the single-process oracle");
    Ok(())
}
