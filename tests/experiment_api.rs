//! Pinning tests for the `Experiment` / `Platform` API redesign.
//!
//! The staged [`Experiment`] builder replaced hand-stitched
//! generate → train → layout → polarize → split → workload sequences across
//! the examples and figure binaries. These tests pin the redesign to the old
//! behaviour: running the same configuration at the same seed through
//! `Experiment` must produce **byte-identical** numbers to the hand-stitched
//! sequence, and the whole platform field must be drivable through one
//! `&dyn Platform` surface.

use gcod::accel::config::AcceleratorConfig;
use gcod::accel::simulator::GcodAccelerator;
use gcod::baselines::{suite, Platform, SimRequest};
use gcod::core::{
    structural_sparsify, GcodConfig, GcodPipeline, Polarizer, SplitWorkload, SubgraphLayout,
};
use gcod::graph::{DatasetProfile, GraphGenerator};
use gcod::nn::models::{ModelConfig, ModelKind};
use gcod::nn::quant::Precision;
use gcod::nn::workload::InferenceWorkload;
use gcod::{Error, Experiment};

fn fast_config() -> GcodConfig {
    GcodConfig {
        num_classes: 2,
        num_subgraphs: 6,
        num_groups: 2,
        prune_ratio: 0.10,
        patch_size: 16,
        patch_threshold: 6,
        pretrain_epochs: 8,
        retrain_epochs: 6,
        ..GcodConfig::default()
    }
}

#[test]
fn experiment_run_matches_the_hand_stitched_sequence_exactly() {
    let seed = 9;
    let scale = 0.05;
    let config = fast_config();

    // The old way: every step stitched by hand.
    let profile = DatasetProfile::cora().scaled(scale);
    let graph = GraphGenerator::new(seed).generate(&profile).unwrap();
    let manual = GcodPipeline::new(config.clone())
        .run(&graph, ModelKind::Gcn, seed)
        .unwrap();
    let model_cfg = ModelConfig::for_kind(ModelKind::Gcn, &graph);
    let manual_gcod_report = GcodAccelerator::new(AcceleratorConfig::vcu128()).simulate_split(
        &InferenceWorkload::build_with_adjacency_nnz(
            &manual.graph,
            &model_cfg,
            Precision::Fp32,
            manual.split.total_nnz(),
        ),
        &manual.split,
    );
    let manual_cpu_report = suite::reference_platform()
        .simulate(&SimRequest::new(InferenceWorkload::build(
            &graph,
            &model_cfg,
            Precision::Fp32,
        )))
        .unwrap();

    // The new way: one staged builder.
    let report = Experiment::on(DatasetProfile::cora())
        .scale(scale)
        .model(ModelKind::Gcn)
        .gcod(config)
        .seed(seed)
        .run()
        .unwrap();

    // Training results are byte-identical.
    assert_eq!(report.graph.num_edges(), graph.num_edges());
    assert_eq!(report.result.baseline_accuracy, manual.baseline_accuracy);
    assert_eq!(report.result.gcod_accuracy, manual.gcod_accuracy);
    assert_eq!(report.result.graph.num_edges(), manual.graph.num_edges());
    assert_eq!(report.result.split.denser_nnz, manual.split.denser_nnz);
    assert_eq!(report.result.split.sparser_nnz, manual.split.sparser_nnz);
    assert_eq!(
        report.result.polarize_report.achieved_prune_ratio,
        manual.polarize_report.achieved_prune_ratio
    );
    assert_eq!(
        report.result.training_cost.total(),
        manual.training_cost.total()
    );

    // Platform reports are byte-identical.
    let gcod_report = report.platform("gcod").expect("gcod simulated");
    assert_eq!(gcod_report.latency_ms, manual_gcod_report.latency_ms);
    assert_eq!(gcod_report.cycles, manual_gcod_report.cycles);
    assert_eq!(
        gcod_report.off_chip_bytes,
        manual_gcod_report.off_chip_bytes
    );
    assert_eq!(
        gcod_report.peak_bandwidth_gbps,
        manual_gcod_report.peak_bandwidth_gbps
    );
    assert_eq!(gcod_report.energy, manual_gcod_report.energy);

    let cpu_report = report.platform("pyg-cpu").expect("cpu simulated");
    assert_eq!(cpu_report.latency_ms, manual_cpu_report.latency_ms);
    assert_eq!(cpu_report.off_chip_bytes, manual_cpu_report.off_chip_bytes);
    assert_eq!(cpu_report.traffic, manual_cpu_report.traffic);
}

#[test]
fn experiment_tune_matches_the_hand_stitched_structural_pass_exactly() {
    let seed = 4;
    let config = fast_config();

    // The old way (what `gcod_bench::run_algorithm` used to stitch inline).
    let profile = DatasetProfile::pubmed().scaled_to_nodes(900);
    let graph = GraphGenerator::new(seed).generate(&profile).unwrap();
    let layout = SubgraphLayout::build(&graph, &config, seed).unwrap();
    let reordered = layout.apply(&graph);
    let (tuned, polarize_report) = Polarizer::new(config.clone())
        .tune(reordered.adjacency(), &layout)
        .unwrap();
    let (structural, structural_report) =
        structural_sparsify(&tuned, &layout, config.patch_size, config.patch_threshold);
    let split = SplitWorkload::extract(&structural, &layout);

    // The new way.
    let run = Experiment::on(DatasetProfile::pubmed())
        .scale_to_nodes(900)
        .gcod(config)
        .seed(seed)
        .tune()
        .unwrap();

    assert_eq!(run.original.num_edges(), graph.num_edges());
    assert_eq!(run.adjacency.nnz(), structural.nnz());
    assert_eq!(run.split.denser_nnz, split.denser_nnz);
    assert_eq!(run.split.sparser_nnz, split.sparser_nnz);
    assert_eq!(run.split.blocks.len(), split.blocks.len());
    assert_eq!(
        run.polarize_report.achieved_prune_ratio,
        polarize_report.achieved_prune_ratio
    );
    assert_eq!(run.structural_report.nnz_after, structural_report.nnz_after);
    assert_eq!(
        run.retained_edge_fraction(),
        structural.nnz() as f64 / graph.num_edges() as f64
    );
}

#[test]
fn the_whole_field_runs_through_one_dyn_platform_surface() {
    // Six platform kinds: the GCoD accelerator plus the five baseline
    // families (CPU, GPU, HyGCN, AWB-GCN, FPGA).
    let run = Experiment::on(DatasetProfile::citeseer())
        .scale_to_nodes(300)
        .gcod(fast_config())
        .seed(2)
        .tune()
        .unwrap();
    let model_cfg = ModelConfig::gcn(&run.reordered);
    let baseline_request = SimRequest::new(InferenceWorkload::build(
        &run.reordered,
        &model_cfg,
        Precision::Fp32,
    ));
    let gcod_request = SimRequest::with_split(
        InferenceWorkload::build_with_adjacency_nnz(
            &run.reordered,
            &model_cfg,
            Precision::Fp32,
            run.split.total_nnz(),
        ),
        run.split.clone(),
    );

    let platforms: Vec<Box<dyn Platform>> = vec![
        Box::new(GcodAccelerator::new(AcceleratorConfig::vcu128())),
        Box::new(suite::by_name("pyg-cpu").unwrap()),
        Box::new(suite::by_name("pyg-gpu").unwrap()),
        Box::new(suite::by_name("hygcn").unwrap()),
        Box::new(suite::by_name("awb-gcn").unwrap()),
        Box::new(suite::by_name("alveo-u50").unwrap()),
    ];
    assert_eq!(platforms.len(), 6);
    for platform in &platforms {
        let request = if platform.requires_split() {
            &gcod_request
        } else {
            &baseline_request
        };
        let report = platform.simulate(request).unwrap();
        assert_eq!(report.platform, platform.name());
        assert!(
            report.latency_ms > 0.0,
            "{} produced no latency",
            platform.name()
        );
        assert!(report.off_chip_bytes > 0);
    }

    // The suite bundles the same surface; the split-less request is rejected
    // by exactly the split-requiring platforms.
    let suite_platforms = suite::all_platforms();
    assert_eq!(suite_platforms.len(), 11);
    for platform in &suite_platforms {
        let outcome = platform.simulate(&baseline_request);
        assert_eq!(outcome.is_err(), platform.requires_split());
    }
}

#[test]
fn unknown_datasets_error_with_the_valid_names() {
    let err = Experiment::on_dataset("karate-club").unwrap_err();
    match &err {
        Error::UnknownDataset { name } => assert_eq!(name, "karate-club"),
        other => panic!("expected UnknownDataset, got {other:?}"),
    }
    let message = err.to_string();
    for known in gcod::graph::KNOWN_DATASETS {
        assert!(message.contains(known), "message misses {known}: {message}");
    }
    // Lookup stays case-insensitive.
    assert_eq!(
        Experiment::on_dataset("PubMed").unwrap().profile().name,
        "pubmed"
    );
}
