//! Differential tests of the SpMM kernel suite: every [`SpmmKernel`]
//! implementation must produce **bit-for-bit** the same result as the
//! reference `NaiveCsr` scalar loop on arbitrary CSR matrices — including
//! empty rows, hub rows, non-square shapes and degenerate 0-row / 0-column
//! matrices — and the CSC ("distributed") traversal must agree within 1 ulp.
//!
//! Run with `PROPTEST_CASES=<n>` to change the per-property case budget
//! (CI pins 64).

use gcod::graph::{CooMatrix, CsrMatrix};
use gcod::nn::kernels::{DegreeBinned, KernelKind, ParallelCsr, SpmmKernel, TiledCsr};
use gcod::nn::sparse_ops::{spmm, spmm_csc, spmm_macs, spmm_transpose};
use gcod::nn::Tensor;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy: an arbitrary sparse matrix as `(rows, cols, entries)` with
/// duplicate-free entries (duplicates collapse to the last value drawn).
/// Random entry counts leave many rows structurally empty.
fn arbitrary_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..48, 1usize..48)
        .prop_flat_map(|(rows, cols)| {
            let entries = proptest::collection::vec((0..rows, 0..cols, -4.0f64..4.0), 0..161);
            (Just(rows), Just(cols), entries)
        })
        .prop_map(|(rows, cols, entries)| {
            let mut dedup: BTreeMap<(usize, usize), f32> = BTreeMap::new();
            for (r, c, v) in entries {
                dedup.insert((r, c), v as f32);
            }
            let mut coo = CooMatrix::new(rows, cols);
            for (&(r, c), &v) in &dedup {
                coo.push(r, c, v).expect("indices drawn in range");
            }
            coo.to_csr()
        })
}

/// A deterministic feature tensor with mixed-sign, non-uniform values.
fn features(rows: usize, cols: usize, salt: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            ((h % 2048) as f32 - 1024.0) / 256.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data).expect("length matches by construction")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Units-in-last-place distance between two finite f32 values.
fn ulp_distance(a: f32, b: f32) -> u64 {
    let to_ordered = |x: f32| {
        let bits = x.to_bits() as i32;
        (if bits < 0 { i32::MIN - bits } else { bits }) as i64
    };
    to_ordered(a).abs_diff(to_ordered(b))
}

proptest! {
    /// The full default-parameter kernel suite is bit-identical to NaiveCsr,
    /// for both `A · X` and `Aᵀ · X`.
    #[test]
    fn suite_matches_naive_bit_for_bit(a in arbitrary_matrix(), feat in 1usize..7, salt in 0u64..1024) {
        let x = features(a.cols(), feat, salt);
        let xt = features(a.rows(), feat, salt);
        let reference = spmm(&a, &x).expect("shapes consistent");
        let reference_t = spmm_transpose(&a, &xt).expect("shapes consistent");
        for kind in KernelKind::all() {
            let kernel = kind.build();
            let out = kernel.spmm(&a, &x).expect("shapes consistent");
            prop_assert_eq!(bits(&out), bits(&reference), "spmm kernel {}", kernel.name());
            let out_t = kernel.spmm_transpose(&a, &xt).expect("shapes consistent");
            prop_assert_eq!(bits(&out_t), bits(&reference_t), "transpose kernel {}", kernel.name());
        }
    }

    /// Tile geometry never changes the tiled kernel's bits.
    #[test]
    fn tiled_invariant_to_tile_geometry(
        a in arbitrary_matrix(),
        row_tile in 0usize..70,
        col_tile in 0usize..70,
    ) {
        let x = features(a.cols(), 3, 7);
        let reference = spmm(&a, &x).expect("shapes consistent");
        let out = TiledCsr::with_tiles(row_tile, col_tile).spmm(&a, &x).expect("shapes consistent");
        prop_assert_eq!(bits(&out), bits(&reference), "tiles {}x{}", row_tile, col_tile);
    }

    /// The parallel kernel is deterministic across worker counts: 1, 2 and 4
    /// workers (and auto) all reproduce the reference bits.
    #[test]
    fn parallel_deterministic_across_worker_counts(a in arbitrary_matrix(), salt in 0u64..1024) {
        let x = features(a.cols(), 4, salt);
        let reference = spmm(&a, &x).expect("shapes consistent");
        for workers in [0usize, 1, 2, 4] {
            // Cut-off zeroed so these small fixtures drive the pooled
            // range-split path; the default-cutoff kernel is covered too.
            let out = ParallelCsr::with_workers_and_cutoff(workers, 0)
                .spmm(&a, &x)
                .expect("shapes consistent");
            prop_assert_eq!(bits(&out), bits(&reference), "{} workers", workers);
            let defaulted = ParallelCsr::with_workers(workers).spmm(&a, &x).expect("shapes consistent");
            prop_assert_eq!(bits(&defaulted), bits(&reference), "{} workers (default cutoff)", workers);
        }
    }

    /// The degree threshold routes rows between two inner loops without
    /// changing the bits, at every routing extreme.
    #[test]
    fn degree_binned_invariant_to_threshold(a in arbitrary_matrix(), threshold in 0usize..40) {
        let x = features(a.cols(), 5, 3);
        let reference = spmm(&a, &x).expect("shapes consistent");
        for t in [threshold, 0, usize::MAX] {
            let out = DegreeBinned::with_threshold(t).spmm(&a, &x).expect("shapes consistent");
            prop_assert_eq!(bits(&out), bits(&reference), "threshold {}", t);
        }
    }

    /// Cross-format check: the column-wise CSC traversal agrees with the
    /// row-wise CSR reference within 1 ulp (both accumulate each output
    /// element in ascending column order, so they are bitwise equal in
    /// practice — the ulp bound is the contract).
    #[test]
    fn csc_traversal_agrees_within_one_ulp(a in arbitrary_matrix(), salt in 0u64..1024) {
        let x = features(a.cols(), 3, salt);
        let row_wise = spmm(&a, &x).expect("shapes consistent");
        let col_wise = spmm_csc(&a.to_csc(), &x).expect("shapes consistent");
        for (i, (&u, &v)) in row_wise.data().iter().zip(col_wise.data()).enumerate() {
            prop_assert!(ulp_distance(u, v) <= 1, "element {}: {} vs {}", i, u, v);
        }
    }

    /// Transpose cross-check: `Aᵀ · X` via the scatter helper equals the
    /// gather over the materialised transpose, for every kernel.
    #[test]
    fn transpose_equals_gather_over_transposed(a in arbitrary_matrix(), salt in 0u64..1024) {
        let x = features(a.rows(), 3, salt);
        let scatter = spmm_transpose(&a, &x).expect("shapes consistent");
        let at = a.transpose();
        for kind in KernelKind::all() {
            let gathered = kind.build().spmm(&at, &x).expect("shapes consistent");
            prop_assert_eq!(bits(&gathered), bits(&scatter), "kernel {}", kind.name());
        }
    }

    /// MAC accounting is kernel-independent: the schedule changes, the work
    /// does not.
    #[test]
    fn mac_counts_identical_across_kernels(a in arbitrary_matrix(), feat in 0usize..9) {
        let x = features(a.cols(), feat, 0);
        let expected = spmm_macs(a.nnz(), feat);
        for kind in KernelKind::all() {
            prop_assert_eq!(kind.build().macs(&a, &x), expected, "kernel {}", kind.name());
        }
    }
}

/// Degenerate shapes the random strategy cannot draw: 0-row / 0-column
/// matrices, zero-width features, and fully empty rows.
#[test]
fn degenerate_shapes_handled_by_every_kernel() {
    for kind in KernelKind::all() {
        let kernel = kind.build();
        let name = kernel.name();

        // 0×0 adjacency with 0-row features.
        let out = kernel
            .spmm(&CsrMatrix::zeros(0, 0), &Tensor::zeros(0, 2))
            .unwrap_or_else(|e| panic!("{name}: 0x0 spmm failed: {e}"));
        assert_eq!(out.shape(), (0, 2), "{name}");

        // 0 rows × 5 cols (transpose yields 5 output rows of zeros).
        let empty_rows = CsrMatrix::zeros(0, 5);
        let out = kernel
            .spmm_transpose(&empty_rows, &Tensor::zeros(0, 3))
            .unwrap();
        assert_eq!(out.shape(), (5, 3), "{name}");
        assert!(out.data().iter().all(|&v| v == 0.0), "{name}");

        // 5 rows × 0 cols against 0-row features.
        let empty_cols = CsrMatrix::zeros(5, 0);
        let out = kernel.spmm(&empty_cols, &Tensor::zeros(0, 4)).unwrap();
        assert_eq!(out.shape(), (5, 4), "{name}");

        // Zero-width features propagate to a zero-width output.
        let out = kernel
            .spmm(&CsrMatrix::identity(4), &Tensor::zeros(4, 0))
            .unwrap();
        assert_eq!(out.shape(), (4, 0), "{name}");

        // A matrix whose rows are all structurally empty.
        let out = kernel
            .spmm(&CsrMatrix::zeros(6, 6), &Tensor::full(6, 3, 9.0))
            .unwrap();
        assert!(out.data().iter().all(|&v| v == 0.0), "{name}");
    }
}

/// The shape contract is enforced uniformly: every kernel rejects a
/// features matrix whose row count disagrees with the adjacency.
#[test]
fn shape_mismatch_rejected_by_every_kernel() {
    let a = CsrMatrix::identity(4);
    let wrong = Tensor::zeros(3, 2);
    for kind in KernelKind::all() {
        let kernel = kind.build();
        assert!(kernel.spmm(&a, &wrong).is_err(), "{}", kernel.name());
        assert!(
            kernel.spmm_transpose(&a, &wrong).is_err(),
            "{}",
            kernel.name()
        );
    }
}
