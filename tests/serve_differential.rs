//! Differential suite for the serving layer: batched inference through the
//! queued dispatcher must be **bit-identical** to one-by-one sequential
//! inference — across batch sizes, worker-lane counts and mixed-dataset
//! queues.
//!
//! The oracle is [`Server::serve_one`], which executes each request alone on
//! the calling thread. Every spawned-server run below compares full
//! [`ServeResponse`] values (logits included) against it with `assert_eq!`,
//! i.e. bitwise equality of every `f32`.
//!
//! Worker counts are exercised two ways: per-model lane counts {1, 2, auto}
//! inside one process here, and the whole suite re-runs under
//! `GCOD_WORKERS=2` in CI so the global pool itself is multi-lane.

use gcod::prelude::*;
use std::time::Duration;

/// Builds the three-model server fixture. Everything is seeded, so two
/// calls produce bit-identical servers — one can be the oracle while the
/// other is spawned.
fn build_server(workers: usize, config: ServerConfig) -> Server {
    let mut server = Server::with_config(config);
    for (name, nodes, degree, feat, classes, seed) in [
        ("small", 60usize, 3usize, 8usize, 3usize, 11u64),
        ("medium", 150, 4, 12, 4, 22),
        ("wide", 90, 5, 16, 5, 33),
    ] {
        let graph = GraphGenerator::new(seed)
            .generate(&DatasetProfile::custom(
                name,
                nodes,
                nodes * degree,
                feat,
                classes,
            ))
            .expect("generate fixture graph");
        let model = GnnModel::new(ModelConfig::gcn(&graph), seed).expect("model");
        server = server.register(
            ServedModel::new(format!("{name}-gcn"), graph, model)
                .with_kernel(KernelKind::ParallelCsr)
                .with_workers(workers),
        );
    }
    server
}

/// A mixed-dataset request stream: interleaved models, overlapping and
/// duplicated nodes, plus perf predictions riding along.
fn request_stream() -> Vec<ServeRequest> {
    vec![
        ServeRequest::classify("small-gcn", vec![0, 5, 9]),
        ServeRequest::classify("medium-gcn", vec![100, 3]),
        ServeRequest::classify("small-gcn", vec![9, 9, 40]),
        ServeRequest::predict_perf("wide-gcn"),
        ServeRequest::classify("wide-gcn", vec![88, 0, 17, 4]),
        ServeRequest::classify("medium-gcn", vec![3]),
        ServeRequest::classify("small-gcn", vec![59]),
        ServeRequest::predict_perf("small-gcn"),
        ServeRequest::classify("wide-gcn", vec![2, 2]),
        ServeRequest::classify("medium-gcn", vec![0, 149, 74]),
    ]
}

/// Runs `requests` through a spawned server (paused submission so the
/// dispatcher sees the whole stream at once, maximising coalescing) and
/// returns the responses in request order.
fn run_batched(server: Server, requests: &[ServeRequest]) -> Vec<gcod::Result<ServeResponse>> {
    run_batched_with(server, requests, SubmitOptions::default())
}

/// As [`run_batched`], with explicit per-submission options (deadlines put
/// the stream on the adaptive-batching path).
fn run_batched_with(
    server: Server,
    requests: &[ServeRequest],
    options: SubmitOptions,
) -> Vec<gcod::Result<ServeResponse>> {
    let handle = server.spawn();
    handle.pause();
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| {
            handle
                .submit(r.clone(), options)
                .expect("queue sized for the stream")
        })
        .collect();
    handle.resume();
    let responses = tickets
        .into_iter()
        .map(|t| t.wait().map_err(gcod::Error::from))
        .collect();
    handle.shutdown();
    responses
}

fn oracle_responses(
    server: &Server,
    requests: &[ServeRequest],
) -> Vec<gcod::Result<ServeResponse>> {
    requests
        .iter()
        .map(|r| server.serve_one(r).map_err(gcod::Error::from))
        .collect()
}

#[test]
fn batched_inference_is_bit_identical_across_batch_sizes() {
    let requests = request_stream();
    let oracle = build_server(1, ServerConfig::default());
    let expected = oracle_responses(&oracle, &requests);
    // max_batch 1 disables fusing entirely; larger values coalesce 2, 4 or
    // the whole stream per model. All must produce identical bytes.
    for max_batch in [1usize, 2, 4, 32] {
        let config = ServerConfig {
            max_batch,
            ..ServerConfig::default()
        };
        let responses = run_batched(build_server(1, config), &requests);
        assert_eq!(responses, expected, "max_batch={max_batch}");
    }
}

#[test]
fn batched_inference_is_bit_identical_across_worker_counts() {
    let requests = request_stream();
    // Single-lane oracle: the reference bytes every lane count must hit.
    let expected = oracle_responses(&build_server(1, ServerConfig::default()), &requests);
    // 1 = serial, 2 = two lanes, 0 = auto (the global pool's count, which
    // CI also forces to 2 via GCOD_WORKERS for the whole suite).
    for workers in [1usize, 2, 0] {
        let sequential =
            oracle_responses(&build_server(workers, ServerConfig::default()), &requests);
        assert_eq!(sequential, expected, "sequential, workers={workers}");
        let batched = run_batched(build_server(workers, ServerConfig::default()), &requests);
        assert_eq!(batched, expected, "batched, workers={workers}");
    }
}

#[test]
fn mixed_dataset_queues_coalesce_per_model_only() {
    let requests = request_stream();
    let oracle = build_server(2, ServerConfig::default());
    let expected = oracle_responses(&oracle, &requests);

    let handle = build_server(2, ServerConfig::default()).spawn();
    handle.pause();
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| handle.submit(r.clone(), SubmitOptions::default()).unwrap())
        .collect();
    handle.resume();
    for (ticket, expected) in tickets.into_iter().zip(expected) {
        assert_eq!(ticket.wait().map_err(gcod::Error::from), expected);
    }
    let stats = handle.shutdown();
    // The stream holds three small-gcn and three medium-gcn classifications
    // — the largest fused group must have coalesced a full set of three
    // despite the interleaving, and must not have over-coalesced across
    // models (no same-model run exceeds 3).
    assert_eq!(stats.largest_batch, 3);
    assert_eq!(stats.submitted, requests.len() as u64);
    assert_eq!(stats.completed_ok, requests.len() as u64);
}

#[test]
fn served_experiment_models_answer_identically_batched_and_sequential() {
    // End-to-end: a model trained through the full GCoD pipeline (the
    // Experiment::serve stage), served batched vs sequential.
    let fast = GcodConfig {
        num_classes: 2,
        num_subgraphs: 6,
        num_groups: 2,
        pretrain_epochs: 6,
        retrain_epochs: 4,
        prune_ratio: 0.1,
        patch_size: 16,
        patch_threshold: 6,
        ..GcodConfig::default()
    };
    let experiment = Experiment::on(DatasetProfile::custom("exp", 160, 550, 12, 4))
        .gcod(fast)
        .seed(5);
    let requests = vec![
        ServeRequest::classify("exp-gcn", vec![0, 7, 19]),
        ServeRequest::classify("exp-gcn", vec![19, 3]),
        ServeRequest::predict_perf("exp-gcn"),
        ServeRequest::classify("exp-gcn", vec![150]),
    ];
    let oracle = Server::new().register(experiment.serve().expect("train + package"));
    let expected = oracle_responses(&oracle, &requests);
    let batched = run_batched(
        Server::new().register(experiment.serve().expect("deterministic retrain")),
        &requests,
    );
    assert_eq!(batched, expected);
    // The trained model carries a split, so the perf route can choose the
    // GCoD accelerator when it wins on predicted cost.
    let perf = expected[2].as_ref().unwrap().as_perf().unwrap().clone();
    assert!(perf.candidates >= 11, "accelerators must be eligible");
}

#[test]
fn adaptive_batching_with_deadlines_is_bit_identical_across_fusion_windows() {
    // The adaptive batcher sizes each fused pass from the oldest queued
    // deadline and the observed service time. However the stream fragments
    // — any window in [1, max_batch], re-chosen per group once the
    // estimate warms — the bytes must match the fixed-window oracle.
    let requests = request_stream();
    let oracle = build_server(1, ServerConfig::default());
    let expected = oracle_responses(&oracle, &requests);
    // Generous deadlines: always on the adaptive path, never expiring.
    let options = SubmitOptions::default().deadline(Duration::from_secs(3600));
    for max_batch in [1usize, 2, 4, 32] {
        let config = ServerConfig {
            max_batch,
            ..ServerConfig::default()
        };
        let adaptive = run_batched_with(build_server(1, config.clone()), &requests, options);
        assert_eq!(adaptive, expected, "adaptive, max_batch={max_batch}");
        // And deadline-carrying traffic matches deadline-less traffic on
        // the same configuration — adaptivity never changes answers.
        let fixed = run_batched(build_server(1, config), &requests);
        assert_eq!(fixed, expected, "fixed, max_batch={max_batch}");
    }
}

#[test]
fn deadlines_and_backpressure_surface_through_the_facade_error() {
    let handle = build_server(
        1,
        ServerConfig {
            queue_capacity: 2,
            ..ServerConfig::default()
        },
    )
    .spawn();
    handle.pause();
    let expired = handle
        .submit(
            ServeRequest::classify("small-gcn", vec![0]),
            SubmitOptions::default().deadline(Duration::ZERO),
        )
        .unwrap();
    let _live = handle
        .submit(
            ServeRequest::classify("small-gcn", vec![0]),
            SubmitOptions::default(),
        )
        .unwrap();
    let full = handle
        .submit(
            ServeRequest::classify("small-gcn", vec![1]),
            SubmitOptions::default(),
        )
        .unwrap_err();
    // Rejections are hoisted into the facade's structured arm: one match,
    // reason included.
    assert!(matches!(
        gcod::Error::from(full),
        gcod::Error::Rejected(RejectReason::QueueFull { capacity: 2 })
    ));
    handle.resume();
    assert!(matches!(
        expired.wait().map_err(gcod::Error::from),
        Err(gcod::Error::Rejected(RejectReason::DeadlineExpired))
    ));
    handle.shutdown();
}
