//! Cross-**process** sharded serving, differential against the
//! single-process oracle: real `shard_worker` OS processes (spawned from
//! `CARGO_BIN_EXE_shard_worker`), real sockets, bit-identical logits for
//! k ∈ {1, 2, 4} on two dataset profiles.

use gcod::prelude::*;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_shard_worker")
}

fn workloads() -> Vec<(Graph, GnnModel)> {
    let profiles = [
        DatasetProfile::custom("proc-a", 140, 560, 10, 4),
        DatasetProfile::by_name("reddit-lite")
            .expect("profile")
            .scaled_to_nodes(260),
    ];
    profiles
        .iter()
        .enumerate()
        .map(|(i, profile)| {
            let graph = GraphGenerator::new(60 + i as u64)
                .generate(profile)
                .expect("generate");
            let model = GnnModel::new(ModelConfig::gcn(&graph), 5 + i as u64).expect("model");
            (graph, model)
        })
        .collect()
}

#[test]
fn worker_processes_serve_bit_identically_for_k_1_2_4() {
    for (graph, model) in workloads() {
        let n = graph.num_nodes();
        let nodes: Vec<usize> = (0..n).collect();
        let expected = model.forward_rows(&graph, &nodes).expect("oracle");
        for k in [1usize, 2, 4] {
            let options = ShardOptions::new(k).with_worker_bin(worker_bin());
            let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
            let got = sharded.forward_rows(&nodes).expect("forward");
            assert_eq!(
                got.data(),
                expected.data(),
                "k={k} process-mode diverged on {}",
                graph.num_nodes()
            );
            // Shutdown reaps every child; a second call is a no-op.
            sharded.shutdown().expect("shutdown");
            sharded.shutdown().expect("shutdown twice");
        }
    }
}

#[test]
fn worker_processes_over_tcp_match_too() {
    let (graph, model) = workloads().remove(0);
    let nodes: Vec<usize> = (0..graph.num_nodes()).step_by(3).collect();
    let expected = model.forward_rows(&graph, &nodes).expect("oracle");
    let options = ShardOptions::new(2)
        .with_worker_bin(worker_bin())
        .with_transport(TransportKind::Tcp);
    let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
    let got = sharded.forward_rows(&nodes).expect("forward");
    assert_eq!(got.data(), expected.data());
    sharded.shutdown().expect("shutdown");
}

#[test]
fn sharded_server_end_to_end_over_processes() {
    let (graph, model) = workloads().remove(0);
    let oracle = Server::new().register(ServedModel::new("m", graph.clone(), model.clone()));
    let request = ServeRequest::classify("m", vec![0, 9, 9, 77]);
    let expected = oracle.serve_one(&request).expect("oracle");

    let options = ShardOptions::new(2).with_worker_bin(worker_bin());
    let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
    let handle = Server::new().register_sharded(sharded).spawn();
    let ticket = handle
        .submit(request, SubmitOptions::default())
        .expect("submit");
    assert_eq!(ticket.wait().expect("wait"), expected);
    let stats = handle.shutdown();
    assert_eq!(stats.shard.shards, 2);
    assert!(stats.shard.frames_sent > 0);
}

/// Short supervisor deadlines so scripted drops cost milliseconds, not the
/// 5-second production default.
fn fast_policy() -> SupervisorPolicy {
    SupervisorPolicy {
        rpc_timeout_ms: 300,
        heartbeat_timeout_ms: 300,
        ..SupervisorPolicy::default()
    }
}

#[test]
fn sigkilled_worker_process_recovers_bit_identically_mid_request() {
    let (graph, model) = workloads().remove(0);
    let nodes: Vec<usize> = (0..graph.num_nodes()).collect();
    let expected = model.forward_rows(&graph, &nodes).expect("oracle");
    let options = ShardOptions::new(2)
        .with_worker_bin(worker_bin())
        .with_policy(fast_policy());
    let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
    assert_eq!(
        sharded.forward_rows(&nodes).expect("warm forward").data(),
        expected.data()
    );
    // SIGKILL a real OS worker; the next request's Gather hits the corpse
    // and must come back through respawn + replay, bit-identical.
    sharded.kill_worker(0).expect("kill");
    let got = sharded.forward_rows(&nodes).expect("recovered forward");
    assert_eq!(got.data(), expected.data(), "post-SIGKILL answer diverged");
    let stats = sharded.stats();
    assert!(stats.respawns >= 1);
    assert_eq!(stats.health, ShardHealth::Healthy);
    assert_eq!(stats.forward_passes, 1, "replay is not a new full pass");
    let report = sharded.shutdown().expect("shutdown");
    assert!(report.is_clean(), "respawned fabric shuts down cleanly");
}

#[test]
fn scripted_kill_between_layers_recovers_bit_identically() {
    let (graph, model) = workloads().remove(0);
    let nodes: Vec<usize> = (0..graph.num_nodes()).step_by(2).collect();
    let expected = model.forward_rows(&graph, &nodes).expect("oracle");
    // Kill shard 1 right before its 2nd supervised RPC — mid first forward,
    // between RunLayer{0} and the layer-boundary Advance.
    let options = ShardOptions::new(2)
        .with_worker_bin(worker_bin())
        .with_policy(fast_policy())
        .with_faults(FaultPlan::new().with(1, 2, FaultAction::KillWorker));
    let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
    let got = sharded.forward_rows(&nodes).expect("forward");
    assert_eq!(got.data(), expected.data(), "mid-forward kill diverged");
    let stats = sharded.stats();
    assert!(stats.respawns >= 1);
    assert_eq!(stats.health, ShardHealth::Healthy);
    sharded.shutdown().expect("shutdown");
}

#[test]
fn seeded_fault_sweep_over_worker_processes() {
    let (graph, model) = workloads().remove(0);
    let nodes: Vec<usize> = (0..graph.num_nodes()).step_by(3).collect();
    let expected = model.forward_rows(&graph, &nodes).expect("oracle");
    for k in [2usize, 4] {
        for seed in [3u64, 11] {
            let options = ShardOptions::new(k)
                .with_worker_bin(worker_bin())
                .with_policy(fast_policy())
                .with_faults(FaultPlan::seeded(seed, k as u32, 4));
            let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
            let got = sharded.forward_rows(&nodes).expect("forward");
            assert_eq!(
                got.data(),
                expected.data(),
                "k={k} seed={seed} process-mode recovery diverged"
            );
            sharded.shutdown().expect("shutdown");
        }
    }
}

#[test]
fn exhausted_budget_degrades_to_local_fallback_over_processes() {
    let (graph, model) = workloads().remove(0);
    let nodes: Vec<usize> = vec![1, 42, 42, 100];
    let expected = model.forward_rows(&graph, &nodes).expect("oracle");
    let options = ShardOptions::new(2)
        .with_worker_bin(worker_bin())
        .with_policy(SupervisorPolicy {
            respawn_budget: 0,
            ..fast_policy()
        });
    let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
    sharded.kill_worker(1).expect("kill");
    let got = sharded.forward_rows(&nodes).expect("fallback forward");
    assert_eq!(
        got.data(),
        expected.data(),
        "fallback must be bit-identical"
    );
    assert!(sharded.is_degraded());
    let stats = sharded.stats();
    assert_eq!(stats.health, ShardHealth::Degraded);
    assert!(stats.fallbacks >= 1);
    let report = sharded.shutdown().expect("shutdown");
    assert!(report.degraded);
    assert!(
        report.outcomes.is_empty(),
        "degradation already reaped the fabric"
    );
}

#[test]
fn shutdown_reports_outcomes_and_reaps_a_sigkilled_worker() {
    let (graph, model) = workloads().remove(0);
    let options = ShardOptions::new(2)
        .with_worker_bin(worker_bin())
        .with_policy(fast_policy());
    let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
    sharded.forward_rows(&[0]).expect("forward");
    sharded.kill_worker(0).expect("kill");
    let report = sharded.shutdown().expect("shutdown");
    assert_eq!(report.outcomes.len(), 2);
    assert!(
        report.outcomes[0].error.is_some(),
        "dead shard's goodbye must surface an error"
    );
    assert!(
        report.outcomes.iter().all(|o| o.reaped),
        "every child waited on, SIGKILL notwithstanding"
    );
}
