//! Cross-**process** sharded serving, differential against the
//! single-process oracle: real `shard_worker` OS processes (spawned from
//! `CARGO_BIN_EXE_shard_worker`), real sockets, bit-identical logits for
//! k ∈ {1, 2, 4} on two dataset profiles.

use gcod::prelude::*;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_shard_worker")
}

fn workloads() -> Vec<(Graph, GnnModel)> {
    let profiles = [
        DatasetProfile::custom("proc-a", 140, 560, 10, 4),
        DatasetProfile::by_name("reddit-lite")
            .expect("profile")
            .scaled_to_nodes(260),
    ];
    profiles
        .iter()
        .enumerate()
        .map(|(i, profile)| {
            let graph = GraphGenerator::new(60 + i as u64)
                .generate(profile)
                .expect("generate");
            let model = GnnModel::new(ModelConfig::gcn(&graph), 5 + i as u64).expect("model");
            (graph, model)
        })
        .collect()
}

#[test]
fn worker_processes_serve_bit_identically_for_k_1_2_4() {
    for (graph, model) in workloads() {
        let n = graph.num_nodes();
        let nodes: Vec<usize> = (0..n).collect();
        let expected = model.forward_rows(&graph, &nodes).expect("oracle");
        for k in [1usize, 2, 4] {
            let options = ShardOptions::new(k).with_worker_bin(worker_bin());
            let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
            let got = sharded.forward_rows(&nodes).expect("forward");
            assert_eq!(
                got.data(),
                expected.data(),
                "k={k} process-mode diverged on {}",
                graph.num_nodes()
            );
            // Shutdown reaps every child; a second call is a no-op.
            sharded.shutdown().expect("shutdown");
            sharded.shutdown().expect("shutdown twice");
        }
    }
}

#[test]
fn worker_processes_over_tcp_match_too() {
    let (graph, model) = workloads().remove(0);
    let nodes: Vec<usize> = (0..graph.num_nodes()).step_by(3).collect();
    let expected = model.forward_rows(&graph, &nodes).expect("oracle");
    let options = ShardOptions::new(2)
        .with_worker_bin(worker_bin())
        .with_transport(TransportKind::Tcp);
    let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
    let got = sharded.forward_rows(&nodes).expect("forward");
    assert_eq!(got.data(), expected.data());
    sharded.shutdown().expect("shutdown");
}

#[test]
fn sharded_server_end_to_end_over_processes() {
    let (graph, model) = workloads().remove(0);
    let oracle = Server::new().register(ServedModel::new("m", graph.clone(), model.clone()));
    let request = ServeRequest::classify("m", vec![0, 9, 9, 77]);
    let expected = oracle.serve_one(&request).expect("oracle");

    let options = ShardOptions::new(2).with_worker_bin(worker_bin());
    let sharded = ShardedModel::launch("m", &graph, &model, &options).expect("launch");
    let handle = Server::new().register_sharded(sharded).spawn();
    let ticket = handle.submit(request).expect("submit");
    assert_eq!(ticket.wait().expect("wait"), expected);
    let stats = handle.shutdown();
    assert_eq!(stats.shard.shards, 2);
    assert!(stats.shard.frames_sent > 0);
}
