//! End-to-end integration tests spanning every crate: synthetic dataset →
//! GCoD training pipeline → workload split → accelerator and baseline
//! simulation. These are the cross-crate claims of the paper, checked on
//! laptop-scale replicas.

use gcod::accel::config::AcceleratorConfig;
use gcod::accel::simulator::GcodAccelerator;
use gcod::baselines::{suite, Platform, SimRequest};
use gcod::core::{GcodConfig, GcodPipeline, Polarizer, SplitWorkload, SubgraphLayout};
use gcod::graph::{DatasetProfile, GraphGenerator, GraphStats};
use gcod::nn::models::{GnnModel, ModelConfig, ModelKind};
use gcod::nn::quant::Precision;
use gcod::nn::train::{TrainConfig, Trainer};
use gcod::nn::workload::InferenceWorkload;

fn fast_config() -> GcodConfig {
    GcodConfig {
        num_classes: 2,
        num_subgraphs: 6,
        num_groups: 2,
        prune_ratio: 0.10,
        patch_size: 16,
        patch_threshold: 6,
        pretrain_epochs: 10,
        retrain_epochs: 8,
        ..GcodConfig::default()
    }
}

#[test]
fn full_codesign_flow_on_cora_replica() {
    // Algorithm: generate, train, tune.
    let profile = DatasetProfile::cora().scaled(0.06);
    let graph = GraphGenerator::new(1).generate(&profile).unwrap();
    let result = GcodPipeline::new(fast_config())
        .run(&graph, ModelKind::Gcn, 0)
        .unwrap();
    assert!(
        result.gcod_accuracy > 0.3,
        "accuracy collapsed: {}",
        result.gcod_accuracy
    );
    assert!(result.total_prune_ratio() > 0.05, "nothing was pruned");

    // Hardware: simulate the tuned workload on GCoD and the strongest
    // baselines; GCoD must win.
    let model_cfg = ModelConfig::gcn(&result.graph);
    let gcod_workload = InferenceWorkload::build_with_adjacency_nnz(
        &result.graph,
        &model_cfg,
        Precision::Fp32,
        result.split.total_nnz(),
    );
    let baseline_request = SimRequest::new(InferenceWorkload::build(
        &graph,
        &model_cfg,
        Precision::Fp32,
    ));
    // One `Platform::simulate` signature covers the accelerator and the
    // baselines.
    let gcod_report = GcodAccelerator::new(AcceleratorConfig::vcu128())
        .simulate(&SimRequest::with_split(gcod_workload, result.split.clone()))
        .unwrap();
    let awb_report = suite::by_name("awb-gcn")
        .unwrap()
        .simulate(&baseline_request)
        .unwrap();
    let hygcn_report = suite::by_name("hygcn")
        .unwrap()
        .simulate(&baseline_request)
        .unwrap();
    assert!(gcod_report.latency_ms < awb_report.latency_ms);
    assert!(gcod_report.latency_ms < hygcn_report.latency_ms);
    assert!(gcod_report.off_chip_bytes < hygcn_report.off_chip_bytes);
}

#[test]
fn polarization_preserves_trainability() {
    // Training on the tuned graph should stay close to training on the
    // original one (the central accuracy claim of the algorithm).
    let profile = DatasetProfile::custom("trainability", 220, 800, 16, 4);
    let graph = GraphGenerator::new(5).generate(&profile).unwrap();

    let mut baseline_model = GnnModel::new(ModelConfig::gcn(&graph), 0).unwrap();
    let baseline = Trainer::new(TrainConfig {
        epochs: 40,
        ..TrainConfig::default()
    })
    .fit(&mut baseline_model, &graph)
    .unwrap();

    let config = fast_config();
    let layout = SubgraphLayout::build(&graph, &config, 0).unwrap();
    let reordered = layout.apply(&graph);
    let (tuned, _) = Polarizer::new(config)
        .tune(reordered.adjacency(), &layout)
        .unwrap();
    let tuned_graph = reordered.with_adjacency(tuned).unwrap();
    let mut tuned_model = GnnModel::new(ModelConfig::gcn(&tuned_graph), 0).unwrap();
    let tuned_report = Trainer::new(TrainConfig {
        epochs: 40,
        ..TrainConfig::default()
    })
    .fit(&mut tuned_model, &tuned_graph)
    .unwrap();

    assert!(
        tuned_report.final_test_accuracy >= baseline.final_test_accuracy - 0.15,
        "tuned {} vs baseline {}",
        tuned_report.final_test_accuracy,
        baseline.final_test_accuracy
    );
}

#[test]
fn reordering_and_pruning_reduce_offchip_traffic_on_gcod() {
    let profile = DatasetProfile::pubmed().scaled(0.05);
    let graph = GraphGenerator::new(9).generate(&profile).unwrap();
    let config = GcodConfig {
        prune_ratio: 0.2,
        polarization_weight: 1.0,
        ..fast_config()
    };
    let layout = SubgraphLayout::build(&graph, &config, 0).unwrap();
    let reordered = layout.apply(&graph);
    let untouched_split = SplitWorkload::extract(reordered.adjacency(), &layout);
    let (tuned, _) = Polarizer::new(config)
        .tune(reordered.adjacency(), &layout)
        .unwrap();
    let tuned_split = SplitWorkload::extract(&tuned, &layout);

    let model_cfg = ModelConfig::gcn(&reordered);
    let accel = GcodAccelerator::new(AcceleratorConfig::vcu128());
    let before = accel.simulate_split(
        &InferenceWorkload::build(&reordered, &model_cfg, Precision::Fp32),
        &untouched_split,
    );
    let after = accel.simulate_split(
        &InferenceWorkload::build_with_adjacency_nnz(
            &reordered,
            &model_cfg,
            Precision::Fp32,
            tuned_split.total_nnz(),
        ),
        &tuned_split,
    );
    assert!(after.off_chip_bytes <= before.off_chip_bytes);
    assert!(after.cycles <= before.cycles);
}

#[test]
fn degree_classes_survive_the_whole_pipeline() {
    // Every subgraph the pipeline reports must reference a valid class and a
    // valid node range of the final graph, and the workload split must cover
    // exactly the final adjacency.
    let profile = DatasetProfile::citeseer().scaled(0.035);
    let graph = GraphGenerator::new(13).generate(&profile).unwrap();
    let result = GcodPipeline::new(fast_config())
        .run(&graph, ModelKind::GraphSage, 1)
        .unwrap();
    let n = result.graph.num_nodes();
    for block in &result.split.blocks {
        assert!(block.class < result.split.num_classes);
        assert!(block.start + block.len <= n);
    }
    assert_eq!(result.split.total_nnz(), result.graph.num_edges());
    // The reordered graph keeps the same degree multiset as the original.
    let mut before: Vec<usize> = graph.degrees();
    let mut after: Vec<usize> = result
        .layout
        .permutation()
        .inverse()
        .as_slice()
        .iter()
        .map(|&old| graph.degrees()[old as usize])
        .collect();
    before.sort_unstable();
    after.sort_unstable();
    assert_eq!(before, after);
}

#[test]
fn gcod_8bit_variant_is_at_least_as_fast_and_as_accurate_as_claimed() {
    let profile = DatasetProfile::cora().scaled(0.05);
    let graph = GraphGenerator::new(21).generate(&profile).unwrap();
    let result = GcodPipeline::new(fast_config())
        .run(&graph, ModelKind::Gcn, 2)
        .unwrap();

    // Accuracy at INT8 stays within a few points of fp32 (Table VII).
    let int8_logits = gcod::nn::quant::quantized_forward(&result.model, &result.graph).unwrap();
    let int8_acc = gcod::nn::metrics::masked_accuracy(
        &int8_logits,
        result.graph.labels(),
        result.graph.test_mask(),
    );
    assert!(int8_acc >= result.gcod_accuracy - 0.1);

    // Speed: the 8-bit accelerator configuration is at least as fast.
    let model_cfg = ModelConfig::gcn(&result.graph);
    let fp32 = GcodAccelerator::new(AcceleratorConfig::vcu128()).simulate_split(
        &InferenceWorkload::build_with_adjacency_nnz(
            &result.graph,
            &model_cfg,
            Precision::Fp32,
            result.split.total_nnz(),
        ),
        &result.split,
    );
    let int8 = GcodAccelerator::new(AcceleratorConfig::vcu128_int8()).simulate_split(
        &InferenceWorkload::build_with_adjacency_nnz(
            &result.graph,
            &model_cfg,
            Precision::Int8,
            result.split.total_nnz(),
        ),
        &result.split,
    );
    assert!(int8.latency_ms <= fp32.latency_ms);
    assert!(int8.off_chip_bytes < fp32.off_chip_bytes);
}

#[test]
fn graph_statistics_remain_power_law_after_tuning() {
    // GCoD prunes and reorders but must not destroy the irregular structure
    // the accuracy depends on (Sec. III: "GCNs still preserve large degrees
    // of irregularity").
    let profile = DatasetProfile::custom("powerlaw", 500, 2500, 8, 4);
    let graph = GraphGenerator::new(31).generate(&profile).unwrap();
    let before = GraphStats::compute(graph.adjacency());
    let config = fast_config();
    let layout = SubgraphLayout::build(&graph, &config, 0).unwrap();
    let reordered = layout.apply(&graph);
    let (tuned, _) = Polarizer::new(config)
        .tune(reordered.adjacency(), &layout)
        .unwrap();
    let after = GraphStats::compute(&tuned);
    assert!(
        after.degree_gini > before.degree_gini * 0.5,
        "degree skew flattened"
    );
    assert!(
        after.max_degree as f64 > before.max_degree as f64 * 0.5,
        "hubs destroyed"
    );
}
