//! Property-based tests (proptest) on the cross-crate invariants: sparse
//! format round-trips, permutation safety, conservation of non-zeros through
//! the GCoD split, and monotonicity of the accelerator model.

use gcod::accel::config::AcceleratorConfig;
use gcod::accel::simulator::GcodAccelerator;
use gcod::core::{GcodConfig, Polarizer, SplitWorkload, SubgraphLayout};
use gcod::graph::{CooMatrix, DatasetProfile, GraphGenerator, Permutation};
use gcod::nn::models::ModelConfig;
use gcod::nn::quant::Precision;
use gcod::nn::sparse_ops::{spmm, spmm_csc};
use gcod::nn::workload::InferenceWorkload;
use gcod::nn::Tensor;
use proptest::prelude::*;

/// Strategy: a random small undirected graph as an edge list over `n` nodes.
fn arbitrary_graph(max_nodes: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (4..max_nodes).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 1..(n * 3));
        (Just(n), edges)
    })
}

fn build_adjacency(n: usize, edges: &[(usize, usize)]) -> gcod::graph::CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for &(a, b) in edges {
        if a != b {
            coo.push(a, b, 1.0).unwrap();
            coo.push(b, a, 1.0).unwrap();
        }
    }
    coo.sort_and_dedup();
    // Deduplicate by rebuilding with unit weights.
    let mut unit = CooMatrix::new(n, n);
    for (r, c, _) in coo.iter() {
        unit.push(r, c, 1.0).unwrap();
    }
    unit.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// COO -> CSR -> CSC -> COO keeps every entry.
    #[test]
    fn sparse_format_roundtrip((n, edges) in arbitrary_graph(40)) {
        let csr = build_adjacency(n, &edges);
        let csc = csr.to_csc();
        let back = csc.to_csr();
        prop_assert_eq!(csr.nnz(), back.nnz());
        for (r, c, v) in csr.iter() {
            prop_assert_eq!(back.get(r, c), v);
        }
    }

    /// Row-wise and column-wise SpMM agree on arbitrary graphs.
    #[test]
    fn spmm_orders_agree((n, edges) in arbitrary_graph(30)) {
        let csr = build_adjacency(n, &edges);
        let x = Tensor::from_vec(n, 3, (0..n * 3).map(|i| (i % 7) as f32 * 0.5).collect()).unwrap();
        let a = spmm(&csr, &x).unwrap();
        let b = spmm_csc(&csr.to_csc(), &x).unwrap();
        for (u, v) in a.data().iter().zip(b.data()) {
            prop_assert!((u - v).abs() < 1e-4);
        }
    }

    /// Symmetric permutation preserves the non-zero count and degree multiset.
    #[test]
    fn permutation_preserves_structure((n, edges) in arbitrary_graph(40), seed in 0u64..1000) {
        let csr = build_adjacency(n, &edges);
        // Derive a deterministic permutation from the seed.
        let mut order: Vec<usize> = (0..n).collect();
        order.rotate_left((seed as usize) % n.max(1));
        let perm = Permutation::from_order(&order).unwrap();
        let permuted = csr.permute_symmetric(&perm);
        prop_assert_eq!(csr.nnz(), permuted.nnz());
        let mut before = csr.row_degrees();
        let mut after = permuted.row_degrees();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    /// The GCoD workload split never loses or duplicates a non-zero, for any
    /// class/group configuration.
    #[test]
    fn split_conserves_nonzeros(
        seed in 0u64..100,
        classes in 1usize..4,
        groups in 1usize..4,
    ) {
        let profile = DatasetProfile::custom("prop", 150, 500, 8, 4);
        let graph = GraphGenerator::new(seed).generate(&profile).unwrap();
        let config = GcodConfig {
            num_classes: classes,
            num_subgraphs: classes * 3,
            num_groups: groups,
            ..GcodConfig::default()
        };
        let layout = SubgraphLayout::build(&graph, &config, seed).unwrap();
        let reordered = layout.apply(&graph);
        let split = SplitWorkload::extract(reordered.adjacency(), &layout);
        prop_assert_eq!(split.total_nnz(), graph.num_edges());
        prop_assert_eq!(split.num_classes, classes);
    }

    /// Pruning more edges never increases the polarized matrix's nnz, and the
    /// achieved ratio tracks the requested one.
    #[test]
    fn polarizer_prunes_monotonically(ratio in 0.0f64..0.6) {
        let profile = DatasetProfile::custom("prop2", 200, 800, 8, 4);
        let graph = GraphGenerator::new(3).generate(&profile).unwrap();
        let config = GcodConfig { prune_ratio: ratio, ..GcodConfig::default() };
        let layout = SubgraphLayout::build(&graph, &config, 0).unwrap();
        let reordered = layout.apply(&graph);
        let (tuned, report) = Polarizer::new(config).tune(reordered.adjacency(), &layout).unwrap();
        prop_assert!(tuned.nnz() <= graph.num_edges());
        prop_assert!(report.achieved_prune_ratio <= ratio + 0.05);
        prop_assert!(report.achieved_prune_ratio >= ratio * 0.7 - 0.01);
    }

    /// The accelerator model is monotone in work: more edges never simulate
    /// faster.
    #[test]
    fn accelerator_latency_monotone_in_edges(extra in 1usize..5) {
        let profile = DatasetProfile::custom("prop3", 200, 600, 16, 4);
        let graph = GraphGenerator::new(11).generate(&profile).unwrap();
        let config = GcodConfig::default();
        let layout = SubgraphLayout::build(&graph, &config, 0).unwrap();
        let reordered = layout.apply(&graph);
        let split = SplitWorkload::extract(reordered.adjacency(), &layout);
        let model_cfg = ModelConfig::gcn(&reordered);
        let accel = GcodAccelerator::new(AcceleratorConfig::small_test());
        let base_nnz = split.total_nnz();
        let small = accel.simulate_split(
            &InferenceWorkload::build_with_adjacency_nnz(&reordered, &model_cfg, Precision::Fp32, base_nnz),
            &split,
        );
        let large = accel.simulate_split(
            &InferenceWorkload::build_with_adjacency_nnz(&reordered, &model_cfg, Precision::Fp32, base_nnz * extra),
            &split,
        );
        prop_assert!(large.cycles >= small.cycles);
    }
}
