//! Differential tests of the quantized kernel suite: every
//! [`QuantSpmmKernel`] implementation and the blocked integer GEMM must be
//! **bit-for-bit** identical to the scalar fixed-point oracle
//! (`quant_spmm_reference` / `quant_matmul_reference`) on arbitrary CSR
//! matrices — empty rows, hub rows, non-square shapes — at every worker
//! count and tile geometry. Integer addition is associative, so unlike the
//! f32 suite this equality is exact for ANY schedule, not just
//! order-preserving ones; a mismatch means a kernel dropped or duplicated a
//! term, not a rounding difference.
//!
//! Also pins the quantization round-trip: dequantized values sit within the
//! analytic per-tensor bound `scale / 2` of the original f32 values.
//!
//! Run with `PROPTEST_CASES=<n>` to change the per-property case budget
//! (CI pins 64).

use gcod::graph::{CooMatrix, CsrMatrix, QuantWidth, QuantizedCsr};
use gcod::nn::qkernels::{
    quant_matmul, quant_matmul_blocked, quant_matmul_reference, quant_spmm_reference,
    NaiveQuantSpmm, ParallelQuantSpmm, QuantSpmmKernel,
};
use gcod::nn::quant::QuantizedTensor;
use gcod::nn::Tensor;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy: an arbitrary sparse matrix as `(rows, cols, entries)` with
/// duplicate-free entries (duplicates collapse to the last value drawn).
/// Random entry counts leave many rows structurally empty.
fn arbitrary_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..48, 1usize..48)
        .prop_flat_map(|(rows, cols)| {
            let entries = proptest::collection::vec((0..rows, 0..cols, -4.0f64..4.0), 0..161);
            (Just(rows), Just(cols), entries)
        })
        .prop_map(|(rows, cols, entries)| {
            let mut dedup: BTreeMap<(usize, usize), f32> = BTreeMap::new();
            for (r, c, v) in entries {
                dedup.insert((r, c), v as f32);
            }
            let mut coo = CooMatrix::new(rows, cols);
            for (&(r, c), &v) in &dedup {
                coo.push(r, c, v).expect("indices drawn in range");
            }
            coo.to_csr()
        })
}

/// A deterministic feature tensor with mixed-sign, non-uniform values.
fn features(rows: usize, cols: usize, salt: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            ((h % 2048) as f32 - 1024.0) / 256.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data).expect("length matches by construction")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

const WIDTHS: [QuantWidth; 2] = [QuantWidth::I8, QuantWidth::I16];

proptest! {
    /// Both quantized SpMM kernels are bit-identical to the scalar oracle at
    /// both widths, across worker counts 1, 2 and auto (auto = the global
    /// pool's lane count, which CI re-pins via `GCOD_WORKERS=2`). The
    /// zero-cutoff variants force these small fixtures onto the pooled
    /// range-split path; the default-cutoff kernels cover the scalar
    /// fall-through too.
    #[test]
    fn quant_spmm_matches_oracle_at_every_worker_count(
        a in arbitrary_matrix(),
        feat in 1usize..7,
        salt in 0u64..1024,
    ) {
        let x = features(a.cols(), feat, salt);
        for width in WIDTHS {
            let aq = QuantizedCsr::quantize(&a, width);
            let xq = QuantizedTensor::quantize(&x, width);
            let reference = quant_spmm_reference(&aq, &xq).expect("shapes consistent");
            let naive = NaiveQuantSpmm.spmm(&aq, &xq).expect("shapes consistent");
            prop_assert_eq!(bits(&naive), bits(&reference), "naive, {:?}", width);
            for workers in [0usize, 1, 2, 4] {
                let pooled = ParallelQuantSpmm::with_workers_and_cutoff(workers, 0)
                    .spmm(&aq, &xq)
                    .expect("shapes consistent");
                prop_assert_eq!(
                    bits(&pooled), bits(&reference),
                    "{} workers (cutoff 0), {:?}", workers, width
                );
                let defaulted = ParallelQuantSpmm::with_workers(workers)
                    .spmm(&aq, &xq)
                    .expect("shapes consistent");
                prop_assert_eq!(
                    bits(&defaulted), bits(&reference),
                    "{} workers (default cutoff), {:?}", workers, width
                );
            }
        }
    }

    /// The blocked integer GEMM is bit-identical to the scalar oracle at
    /// every tile geometry and worker count, for both widths. Tile edges of
    /// 0 exercise the `max(1)` clamping; tiles larger than the matrix
    /// exercise the single-tile path.
    #[test]
    fn quant_gemm_invariant_to_tiles_and_workers(
        m in 1usize..24,
        inner in 1usize..24,
        n in 1usize..24,
        k_block in 0usize..40,
        col_block in 0usize..40,
        salt in 0u64..1024,
    ) {
        let a = features(m, inner, salt);
        let b = features(inner, n, salt ^ 0xABCD);
        for width in WIDTHS {
            let aq = QuantizedTensor::quantize(&a, width);
            let bq = QuantizedTensor::quantize(&b, width);
            let reference = quant_matmul_reference(&aq, &bq).expect("shapes consistent");
            for workers in [0usize, 1, 2, 4] {
                let blocked = quant_matmul_blocked(&aq, &bq, workers, k_block, col_block)
                    .expect("shapes consistent");
                prop_assert_eq!(
                    bits(&blocked), bits(&reference),
                    "tiles {}x{}, {} workers, {:?}", k_block, col_block, workers, width
                );
            }
            let defaulted = quant_matmul(&aq, &bq, 2).expect("shapes consistent");
            prop_assert_eq!(bits(&defaulted), bits(&reference), "default tiles, {:?}", width);
        }
    }

    /// Quantization round-trip error never exceeds the analytic per-tensor
    /// bound, for dense tensors and sparse matrices alike, and int16 is
    /// never looser than int8 on the same data.
    ///
    /// The bound is `scale/2` (the rounding step) widened by `qmax·ε_f32`:
    /// the f32 division `x / scale` carries a relative error of up to one
    /// f32 epsilon, which at the extreme `|x / scale| ≈ qmax` shifts the
    /// value being rounded by up to `qmax·ε` quantization steps. Material
    /// only at int16 (`32767·ε ≈ 0.004` steps) but part of the contract.
    #[test]
    fn dequantization_error_within_analytic_bound(
        a in arbitrary_matrix(),
        feat in 1usize..7,
        salt in 0u64..1024,
    ) {
        let mut dense_err = Vec::new();
        let x = features(a.cols(), feat, salt);
        for (width, qmax) in [(QuantWidth::I8, 127.0f32), (QuantWidth::I16, 32767.0)] {
            let slack = 1.0 + qmax * f32::EPSILON;
            let xq = QuantizedTensor::quantize(&x, width);
            let bound = xq.error_bound() * slack;
            let err = xq.max_error(&x);
            prop_assert!(err <= bound, "dense {:?}: {} > bound {}", width, err, bound);
            dense_err.push(err);

            let aq = QuantizedCsr::quantize(&a, width);
            let sparse_bound = aq.scale() / 2.0 * slack;
            let sparse_err = aq.max_error(&a);
            prop_assert!(
                sparse_err <= sparse_bound,
                "sparse {:?}: {} > bound {}", width, sparse_err, sparse_bound
            );
        }
        prop_assert!(dense_err[1] <= dense_err[0], "int16 must be at least as tight as int8");
    }

    /// The whole-layer contract behind worker invariance: quantize → SpMM →
    /// GEMM produces the same bits whether the intermediate SpMM ran naive
    /// or pooled, because the dequantized f32 intermediates are identical.
    #[test]
    fn chained_spmm_gemm_worker_invariant(a in arbitrary_matrix(), salt in 0u64..1024) {
        let x = features(a.cols(), 5, salt);
        let w = features(5, 3, salt ^ 0x5A5A);
        for width in WIDTHS {
            let aq = QuantizedCsr::quantize(&a, width);
            let wq = QuantizedTensor::quantize(&w, width);
            let mut outputs = Vec::new();
            for workers in [1usize, 2, 0] {
                let kernel = ParallelQuantSpmm::with_workers_and_cutoff(workers, 0);
                let xq = QuantizedTensor::quantize(&x, width);
                let agg = kernel.spmm(&aq, &xq).expect("shapes consistent");
                let aggq = QuantizedTensor::quantize(&agg, width);
                let out = quant_matmul(&aggq, &wq, workers).expect("shapes consistent");
                outputs.push(bits(&out));
            }
            prop_assert_eq!(&outputs[0], &outputs[1], "1 vs 2 workers, {:?}", width);
            prop_assert_eq!(&outputs[0], &outputs[2], "1 vs auto workers, {:?}", width);
        }
    }
}

/// Degenerate shapes the random strategy cannot draw: 0-row / 0-column
/// matrices, zero-width features and all-empty rows, at both widths.
#[test]
fn degenerate_shapes_handled_by_every_quant_kernel() {
    let kernels: [&dyn QuantSpmmKernel; 2] = [
        &NaiveQuantSpmm,
        &ParallelQuantSpmm::with_workers_and_cutoff(2, 0),
    ];
    for width in WIDTHS {
        for kernel in kernels {
            let name = kernel.name();

            let aq = QuantizedCsr::quantize(&CsrMatrix::zeros(0, 0), width);
            let xq = QuantizedTensor::quantize(&Tensor::zeros(0, 2), width);
            let out = kernel.spmm(&aq, &xq).unwrap();
            assert_eq!(out.shape(), (0, 2), "{name}");

            let aq = QuantizedCsr::quantize(&CsrMatrix::zeros(5, 0), width);
            let xq = QuantizedTensor::quantize(&Tensor::zeros(0, 4), width);
            let out = kernel.spmm(&aq, &xq).unwrap();
            assert_eq!(out.shape(), (5, 4), "{name}");

            let aq = QuantizedCsr::quantize(&CsrMatrix::identity(4), width);
            let xq = QuantizedTensor::quantize(&Tensor::zeros(4, 0), width);
            let out = kernel.spmm(&aq, &xq).unwrap();
            assert_eq!(out.shape(), (4, 0), "{name}");

            let aq = QuantizedCsr::quantize(&CsrMatrix::zeros(6, 6), width);
            let xq = QuantizedTensor::quantize(&Tensor::full(6, 3, 9.0), width);
            let out = kernel.spmm(&aq, &xq).unwrap();
            assert!(out.data().iter().all(|&v| v == 0.0), "{name}");
        }
    }
}

/// Mixed-width operands and shape mismatches are rejected, never silently
/// coerced.
#[test]
fn width_and_shape_mismatches_rejected() {
    let a = CsrMatrix::identity(4);
    let x = features(4, 2, 0);
    let a8 = QuantizedCsr::quantize(&a, QuantWidth::I8);
    let x16 = QuantizedTensor::quantize(&x, QuantWidth::I16);
    for kernel in [
        &NaiveQuantSpmm as &dyn QuantSpmmKernel,
        &ParallelQuantSpmm::default(),
    ] {
        assert!(kernel.spmm(&a8, &x16).is_err(), "{}", kernel.name());
        let wrong = QuantizedTensor::quantize(&features(3, 2, 0), QuantWidth::I8);
        assert!(kernel.spmm(&a8, &wrong).is_err(), "{}", kernel.name());
    }
    let a8d = QuantizedTensor::quantize(&features(4, 4, 1), QuantWidth::I8);
    assert!(quant_matmul(&a8d, &x16, 1).is_err());
    let wrong = QuantizedTensor::quantize(&features(3, 2, 0), QuantWidth::I8);
    assert!(quant_matmul(&a8d, &wrong, 1).is_err());
}
