//! Differential tests of the blocked, pool-parallel dense matmul and the
//! parallel transpose: every worker count and every block geometry must be
//! **bit-for-bit** identical to the serial i-k-j reference
//! ([`Tensor::matmul_serial`]) — including 0-row / 0-column / 0-inner and
//! non-square shapes — so golden reports stay byte-stable no matter how many
//! cores the machine has.
//!
//! Run with `PROPTEST_CASES=<n>` to change the per-property case budget
//! (CI pins 64).

use gcod::nn::Tensor;
use gcod::runtime::Pool;
use proptest::prelude::*;

/// A deterministic tensor with mixed-sign, non-uniform values (including
/// exact zeros, which historically had a dedicated skip in the inner loop).
fn patterned(rows: usize, cols: usize, salt: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            if h.is_multiple_of(7) {
                0.0
            } else {
                ((h % 2048) as f32 - 1024.0) / 256.0
            }
        })
        .collect();
    Tensor::from_vec(rows, cols, data).expect("length matches by construction")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// The default matmul and every explicit worker count reproduce the
    /// serial reference bits on arbitrary (including degenerate and
    /// non-square) shapes.
    #[test]
    fn matmul_bit_equal_to_serial_across_worker_counts(
        m in 0usize..32,
        k in 0usize..32,
        n in 0usize..32,
        salt in 0u64..1024,
    ) {
        let a = patterned(m, k, salt);
        let b = patterned(k, n, salt.wrapping_add(1));
        let reference = a.matmul_serial(&b).expect("shapes consistent");
        prop_assert_eq!(reference.shape(), (m, n));
        let default = a.matmul(&b).expect("shapes consistent");
        prop_assert_eq!(bits(&default), bits(&reference), "default matmul");
        for workers in [0usize, 1, 2, 3, 4] {
            let out = a.matmul_with(&b, workers).expect("shapes consistent");
            prop_assert_eq!(bits(&out), bits(&reference), "{} workers", workers);
        }
    }

    /// Block geometry never changes the bits: k-blocks and column blocks of
    /// any size (0 = whole axis) tile the traversal only.
    #[test]
    fn matmul_bit_equal_across_block_sizes(
        m in 0usize..24,
        k in 0usize..24,
        n in 0usize..24,
        k_block in 0usize..40,
        col_block in 0usize..40,
        salt in 0u64..1024,
    ) {
        let a = patterned(m, k, salt);
        let b = patterned(k, n, salt.wrapping_add(9));
        let reference = a.matmul_serial(&b).expect("shapes consistent");
        for workers in [1usize, 3] {
            let out = a
                .matmul_blocked(&b, workers, k_block, col_block)
                .expect("shapes consistent");
            prop_assert_eq!(
                bits(&out),
                bits(&reference),
                "blocks {}x{} at {} workers",
                k_block,
                col_block,
                workers
            );
        }
    }

    /// The pool-parallel transpose moves every element exactly where the
    /// naive double loop puts it, at any shape.
    #[test]
    fn transpose_bit_equal_to_naive(m in 0usize..40, n in 0usize..40, salt in 0u64..1024) {
        let a = patterned(m, n, salt);
        let t = a.transpose();
        prop_assert_eq!(t.shape(), (n, m));
        for r in 0..m {
            for c in 0..n {
                prop_assert_eq!(t.get(c, r).to_bits(), a.get(r, c).to_bits(), "({}, {})", r, c);
            }
        }
        prop_assert_eq!(bits(&t.transpose()), bits(&a), "double transpose");
    }
}

/// Shapes the random strategy rarely or never isolates, pinned explicitly.
#[test]
fn degenerate_shapes_match_serial() {
    for (m, k, n) in [
        (0, 0, 0),
        (0, 5, 3),
        (5, 0, 3),
        (5, 3, 0),
        (1, 1, 1),
        (1, 64, 1),
        (64, 1, 64),
        (3, 200, 2), // inner dim far beyond one k-block
    ] {
        let a = patterned(m, k, 3);
        let b = patterned(k, n, 4);
        let reference = a.matmul_serial(&b).unwrap();
        for workers in [0usize, 1, 2] {
            let out = a.matmul_with(&b, workers).unwrap();
            assert_eq!(out.shape(), (m, n), "{m}x{k}x{n}");
            assert_eq!(bits(&out), bits(&reference), "{m}x{k}x{n} at {workers}w");
        }
    }
}

/// The shape contract matches the serial reference exactly.
#[test]
fn shape_mismatches_rejected_by_every_path() {
    let a = Tensor::zeros(3, 4);
    let b = Tensor::zeros(5, 2);
    assert!(a.matmul_serial(&b).is_err());
    assert!(a.matmul(&b).is_err());
    assert!(a.matmul_with(&b, 2).is_err());
    assert!(a.matmul_blocked(&b, 2, 8, 8).is_err());
}

/// A worker count far beyond both the pool's lanes and the row count is
/// clamped gracefully and still produces the reference bits.
#[test]
fn oversubscribed_worker_counts_are_safe() {
    let a = patterned(17, 9, 7);
    let b = patterned(9, 5, 8);
    let reference = a.matmul_serial(&b).unwrap();
    let pool_lanes = Pool::global().workers();
    for workers in [pool_lanes, pool_lanes + 7, 1000] {
        // matmul_blocked honours the explicit count unconditionally, so this
        // drives the pooled path even though the fixture is tiny.
        let out = a.matmul_blocked(&b, workers, 4, 4).unwrap();
        assert_eq!(bits(&out), bits(&reference), "{workers} workers");
    }
}
